/**
 * @file
 * Real-time-graphics kernels (Table 1): the four lighting/reflection
 * shaders, vertex skinning (data-dependent bone loop + 288-entry matrix
 * palette) and anisotropic filtering (data-dependent sample loop + tap
 * weight table). Each mirrors its golden model in src/ref/shading.cc.
 */

#include "kernels/build_util.hh"
#include "kernels/catalog.hh"
#include "kernels/gfx_layout.hh"
#include "ref/shading.hh"

namespace dlp::kernels {

namespace {

using isa::Op;

/** Declare a Vec3 as three named constants. */
std::vector<Value>
vec3Const(KernelBuilder &b, const std::string &name, const ref::Vec3 &v)
{
    return {b.constantF(name + "x", v.x), b.constantF(name + "y", v.y),
            b.constantF(name + "z", v.z)};
}

/** Unpack channel c of a packed texel, mirroring ref::unpackChannel. */
Value
unpackChan(KernelBuilder &b, Value texel, unsigned c, Value inv65535)
{
    Value bits = c == 0 ? b.opImm(Op::And, texel, 0xffff)
                        : b.opImm(Op::And, b.opImm(Op::Shr, texel, 16 * c),
                                  0xffff);
    return b.fmul(b.op(Op::Itof, bits), inv65535);
}

/**
 * Byte address of texel (xi, yi) -- already wrapped integer coords --
 * in a texture whose byte base address is the Value `base`.
 */
Value
texelAddr(KernelBuilder &b, Value base, Value xi, Value yi, unsigned log2w)
{
    Value off = b.markOverhead(
        b.add(b.markOverhead(b.opImm(Op::Shl, yi, log2w)), xi));
    return b.markOverhead(b.add(base, b.markOverhead(b.opImm(Op::Shl, off, 3))));
}

/**
 * Bilinear texture sample mirroring ref::Texture2D::sampleBilinear.
 * Coordinates must be non-negative (truncation == floor). Emits exactly
 * four irregular loads.
 */
void
buildBilinear(KernelBuilder &b, Value base, unsigned log2w, unsigned log2h,
              Value u, Value v, Value inv65535, Value rgb[3])
{
    Word wMask = (Word(1) << log2w) - 1;
    Word hMask = (Word(1) << log2h) - 1;

    Value x0 = b.op(Op::Ftoi, u);
    Value y0 = b.op(Op::Ftoi, v);
    Value tu = b.fsub(u, b.op(Op::Itof, x0));
    Value tv = b.fsub(v, b.op(Op::Itof, y0));

    Value xi0 = b.markOverhead(b.opImm(Op::And, x0, wMask));
    Value xi1 = b.markOverhead(
        b.opImm(Op::And, b.markOverhead(b.opImm(Op::Add, x0, 1)), wMask));
    Value yi0 = b.markOverhead(b.opImm(Op::And, y0, hMask));
    Value yi1 = b.markOverhead(
        b.opImm(Op::And, b.markOverhead(b.opImm(Op::Add, y0, 1)), hMask));

    Value t00 = b.cachedLoad(texelAddr(b, base, xi0, yi0, log2w));
    Value t10 = b.cachedLoad(texelAddr(b, base, xi1, yi0, log2w));
    Value t01 = b.cachedLoad(texelAddr(b, base, xi0, yi1, log2w));
    Value t11 = b.cachedLoad(texelAddr(b, base, xi1, yi1, log2w));

    Value one = b.immF(1.0);
    Value omtu = b.fsub(one, tu);
    Value omtv = b.fsub(one, tv);
    for (unsigned c = 0; c < 3; ++c) {
        Value c00 = unpackChan(b, t00, c, inv65535);
        Value c10 = unpackChan(b, t10, c, inv65535);
        Value c01 = unpackChan(b, t01, c, inv65535);
        Value c11 = unpackChan(b, t11, c, inv65535);
        Value ia = b.fadd(b.fmul(c00, omtu), b.fmul(c10, tu));
        Value ib = b.fadd(b.fmul(c01, omtu), b.fmul(c11, tu));
        rgb[c] = b.fadd(b.fmul(ia, omtv), b.fmul(ib, tv));
    }
}

} // namespace

Kernel
makeVertexSimple()
{
    KernelBuilder b("vertex-simple", Domain::Graphics);
    b.setRecord(7, 6);
    auto p = ref::makeVertexSimpleParams(kernelSeed("vertex-simple"));

    std::vector<Value> mvp, nrm;
    for (int i = 0; i < 12; ++i)
        mvp.push_back(b.constantF("mvp" + std::to_string(i), p.mvp[i]));
    for (int i = 0; i < 9; ++i)
        nrm.push_back(b.constantF("nrm" + std::to_string(i), p.nrm[i]));
    auto lightDir = vec3Const(b, "ld", p.lightDir);
    auto halfVec = vec3Const(b, "hv", p.halfVec);
    auto lightColor = vec3Const(b, "lc", p.lightColor);
    auto ambient = vec3Const(b, "am", p.ambient);
    auto specular = vec3Const(b, "sp", p.specular);
    auto emissive = vec3Const(b, "em", p.emissive);

    Value pos[3] = {b.inWord(0), b.inWord(1), b.inWord(2)};
    Value nin[3] = {b.inWord(3), b.inWord(4), b.inWord(5)};
    Value albedo = b.inWord(6);

    Value clip[3];
    xform34(b, mvp, pos, clip);
    for (int r = 0; r < 3; ++r)
        b.outWord(r, clip[r]);

    Value n[3];
    xform33(b, nrm, nin, n);

    Value ld[3] = {lightDir[0], lightDir[1], lightDir[2]};
    Value hv[3] = {halfVec[0], halfVec[1], halfVec[2]};
    Value ndotl = maxZero(b, dot3(b, n, ld));
    Value ndoth = maxZero(b, dot3(b, n, hv));
    Value spec = pow8(b, ndoth);

    for (int c = 0; c < 3; ++c) {
        Value diffuse = b.fadd(ambient[c], b.fmul(lightColor[c], ndotl));
        Value color = b.fadd(b.fadd(emissive[c], b.fmul(albedo, diffuse)),
                             b.fmul(specular[c], spec));
        b.outWord(3 + c, color);
    }
    return b.build();
}

Kernel
makeFragmentSimple()
{
    KernelBuilder b("fragment-simple", Domain::Graphics);
    b.setRecord(8, 4);
    b.setIrregularBytes(uint64_t(gfx::fragTexSize) * gfx::fragTexSize *
                        wordBytes);
    auto p = ref::makeFragmentSimpleParams(kernelSeed("fragment-simple"));

    auto halfVec = vec3Const(b, "hv", p.halfVec);
    auto ambient = vec3Const(b, "am", p.ambient);
    auto lightColor = vec3Const(b, "lc", p.lightColor);
    auto specular = vec3Const(b, "sp", p.specular);
    Value texBase = b.constant("texBase", gfx::textureBase);
    Value inv65535 = b.constantF("inv65535", 1.0 / 65535.0);

    Value n[3] = {b.inWord(0), b.inWord(1), b.inWord(2)};
    Value u = b.inWord(3);
    Value v = b.inWord(4);
    Value l[3] = {b.inWord(5), b.inWord(6), b.inWord(7)};

    Value rgb[3];
    buildBilinear(b, texBase, gfx::fragTexLog2, gfx::fragTexLog2, u, v,
                  inv65535, rgb);

    Value hv[3] = {halfVec[0], halfVec[1], halfVec[2]};
    Value ndotl = maxZero(b, dot3(b, n, l));
    Value ndoth = maxZero(b, dot3(b, n, hv));
    Value spec = pow8(b, ndoth);

    for (int c = 0; c < 3; ++c) {
        Value lit = b.fadd(ambient[c], b.fmul(lightColor[c], ndotl));
        b.outWord(c, b.fadd(b.fmul(rgb[c], lit), b.fmul(specular[c], spec)));
    }
    b.outWord(3, b.immF(1.0));
    return b.build();
}

Kernel
makeVertexReflection()
{
    KernelBuilder b("vertex-reflection", Domain::Graphics);
    b.setRecord(9, 6);
    auto p = ref::makeVertexReflectionParams(kernelSeed("vertex-reflection"));

    std::vector<Value> mvp, world, nrm;
    for (int i = 0; i < 12; ++i)
        mvp.push_back(b.constantF("mvp" + std::to_string(i), p.mvp[i]));
    for (int i = 0; i < 12; ++i)
        world.push_back(b.constantF("wld" + std::to_string(i), p.world[i]));
    for (int i = 0; i < 9; ++i)
        nrm.push_back(b.constantF("nrm" + std::to_string(i), p.nrm[i]));
    auto eye = vec3Const(b, "eye", p.eye);

    Value pos[3] = {b.inWord(0), b.inWord(1), b.inWord(2)};
    Value nin[3] = {b.inWord(3), b.inWord(4), b.inWord(5)};

    Value clip[3];
    xform34(b, mvp, pos, clip);
    for (int r = 0; r < 3; ++r)
        b.outWord(r, clip[r]);

    Value wpos[3];
    xform34(b, world, pos, wpos);
    Value n[3];
    xform33(b, nrm, nin, n);

    Value v[3] = {b.fsub(eye[0], wpos[0]), b.fsub(eye[1], wpos[1]),
                  b.fsub(eye[2], wpos[2])};
    Value len2 = b.fadd(b.fadd(b.fmul(v[0], v[0]), b.fmul(v[1], v[1])),
                        b.fmul(v[2], v[2]));
    Value invLen = b.fdiv(b.immF(1.0), b.op(Op::Fsqrt, len2));
    Value vn[3] = {b.fmul(v[0], invLen), b.fmul(v[1], invLen),
                   b.fmul(v[2], invLen)};

    Value ndotv = dot3(b, n, vn);
    Value two = b.fmul(b.immF(2.0), ndotv);
    for (int r = 0; r < 3; ++r)
        b.outWord(3 + r, b.fsub(b.fmul(two, n[r]), vn[r]));
    return b.build();
}

Kernel
makeFragmentReflection()
{
    KernelBuilder b("fragment-reflection", Domain::Graphics);
    b.setRecord(5, 3);
    b.setIrregularBytes(6ull * gfx::cubeFaceSize * gfx::cubeFaceSize *
                        wordBytes);
    auto p =
        ref::makeFragmentReflectionParams(kernelSeed("fragment-reflection"));

    auto tint = vec3Const(b, "tint", p.tint);
    Value bias = b.constantF("bias", p.fresnelBias);
    Value cubeBase = b.constant("cubeBase", gfx::textureBase);
    Value inv65535 = b.constantF("inv65535", 1.0 / 65535.0);
    Value half = b.constantF("half", gfx::cubeFaceSize / 2.0);

    Value x = b.inWord(0);
    Value y = b.inWord(1);
    Value z = b.inWord(2);
    Value intensity = b.inWord(3);

    // Cube-face projection mirroring ref::CubeMap::project. The select
    // chains are the predication cost SIMD execution pays for this
    // control (Section 2.1.2).
    Value ax = b.op(Op::Fabs, x);
    Value ay = b.op(Op::Fabs, y);
    Value az = b.op(Op::Fabs, z);
    Value zero = b.immF(0.0);
    Value isX = b.and_(b.op(Op::Fle, ay, ax), b.op(Op::Fle, az, ax));
    Value isY = b.and_(b.op(Op::Fle, ax, ay), b.op(Op::Fle, az, ay));
    Value xpos = b.op(Op::Fle, zero, x);
    Value ypos = b.op(Op::Fle, zero, y);
    Value zpos = b.op(Op::Fle, zero, z);

    Value faceX = b.sel(xpos, b.imm(0), b.imm(1));
    Value faceY = b.sel(ypos, b.imm(2), b.imm(3));
    Value faceZ = b.sel(zpos, b.imm(4), b.imm(5));
    Value face = b.sel(isX, faceX, b.sel(isY, faceY, faceZ));

    Value scX = b.sel(xpos, b.op(Op::Fneg, z), z);
    Value scY = x;
    Value scZ = b.sel(zpos, x, b.op(Op::Fneg, x));
    Value sc = b.sel(isX, scX, b.sel(isY, scY, scZ));

    Value negY = b.op(Op::Fneg, y);
    Value tcY = b.sel(ypos, z, b.op(Op::Fneg, z));
    Value tc = b.sel(isX, negY, b.sel(isY, tcY, negY));

    Value ma = b.sel(isX, ax, b.sel(isY, ay, az));

    Value one = b.immF(1.0);
    Value u = b.fmul(b.fadd(b.fdiv(sc, ma), one), half);
    Value v = b.fmul(b.fadd(b.fdiv(tc, ma), one), half);

    // Face f's data starts faceSize^2 words into the cube region.
    Value faceByteOff = b.markOverhead(
        b.opImm(Op::Shl, face, 2 * gfx::cubeFaceLog2 + 3));
    Value base = b.markOverhead(b.add(cubeBase, faceByteOff));

    Value rgb[3];
    buildBilinear(b, base, gfx::cubeFaceLog2, gfx::cubeFaceLog2, u, v,
                  inv65535, rgb);

    Value scale = b.fadd(bias, intensity);
    for (int c = 0; c < 3; ++c)
        b.outWord(c, b.fmul(b.fmul(rgb[c], tint[c]), scale));
    return b.build();
}

Kernel
makeVertexSkinning()
{
    KernelBuilder b("vertex-skinning", Domain::Graphics);
    // Record: pos[3], normal[3], boneCount, boneIdx[4], weight[4],
    // albedo = 16 words in; clip[3], color[3], skinnedNormal[3] out.
    b.setRecord(16, 9);
    auto p = ref::makeSkinningParams(kernelSeed("vertex-skinning"));

    // The 24x12 matrix palette: Table 2's 288 indexed constants.
    std::vector<Word> palette;
    palette.reserve(p.palette.size());
    for (double d : p.palette)
        palette.push_back(isa::fpToWord(d));
    uint16_t palT = b.addTable("palette", std::move(palette));

    std::vector<Value> mvp;
    for (int i = 0; i < 12; ++i)
        mvp.push_back(b.constantF("mvp" + std::to_string(i), p.mvp[i]));
    auto lightDir = vec3Const(b, "ld", p.lightDir);
    auto lightColor = vec3Const(b, "lc", p.lightColor);
    auto ambient = vec3Const(b, "am", p.ambient);

    Value pos[3] = {b.inWord(0), b.inWord(1), b.inWord(2)};
    Value nin[3] = {b.inWord(3), b.inWord(4), b.inWord(5)};
    Value count = b.inWord(6);
    Value albedo = b.inWord(15);

    Value zero = b.immF(0.0);
    b.beginLoopVar(count, ref::SkinningParams::maxBonesPerVertex);
    Value accP[3] = {b.carry(zero), b.carry(zero), b.carry(zero)};
    Value accN[3] = {b.carry(zero), b.carry(zero), b.carry(zero)};
    {
        Value i = b.loopIdx();
        Value bIdx = b.inWordAt(b.markOverhead(b.opImm(Op::Add, i, 7)));
        Value w = b.inWordAt(b.markOverhead(b.opImm(Op::Add, i, 11)));
        // palette base = bone * 12 = (bone << 3) + (bone << 2).
        Value mBase = b.markOverhead(
            b.add(b.markOverhead(b.opImm(Op::Shl, bIdx, 3)),
                  b.markOverhead(b.opImm(Op::Shl, bIdx, 2))));
        Value m[12];
        for (int k = 0; k < 12; ++k) {
            Value off = k == 0 ? mBase
                               : b.markOverhead(
                                     b.opImm(Op::Add, mBase, Word(k)));
            m[k] = b.tableLoad(palT, off);
        }
        for (int r = 0; r < 3; ++r) {
            Value tp = b.fadd(
                b.fadd(b.fadd(b.fmul(m[4 * r], pos[0]),
                              b.fmul(m[4 * r + 1], pos[1])),
                       b.fmul(m[4 * r + 2], pos[2])),
                m[4 * r + 3]);
            Value tn = b.fadd(b.fadd(b.fmul(m[4 * r], nin[0]),
                                     b.fmul(m[4 * r + 1], nin[1])),
                              b.fmul(m[4 * r + 2], nin[2]));
            b.setCarryNext(accP[r], b.fadd(accP[r], b.fmul(w, tp)));
            b.setCarryNext(accN[r], b.fadd(accN[r], b.fmul(w, tn)));
        }
    }
    b.endLoop();

    Value sp[3] = {b.exitValue(accP[0]), b.exitValue(accP[1]),
                   b.exitValue(accP[2])};
    Value sn[3] = {b.exitValue(accN[0]), b.exitValue(accN[1]),
                   b.exitValue(accN[2])};

    Value clip[3];
    xform34(b, mvp, sp, clip);
    for (int r = 0; r < 3; ++r)
        b.outWord(r, clip[r]);

    Value ld[3] = {lightDir[0], lightDir[1], lightDir[2]};
    Value ndotl = maxZero(b, dot3(b, sn, ld));
    for (int c = 0; c < 3; ++c) {
        Value lit = b.fadd(ambient[c], b.fmul(lightColor[c], ndotl));
        b.outWord(3 + c, b.fmul(albedo, lit));
    }
    for (int c = 0; c < 3; ++c)
        b.outWord(6 + c, sn[c]);
    return b.build();
}

Kernel
makeAnisotropic()
{
    KernelBuilder b("anisotropic-filter", Domain::Graphics);
    // Record: u, v, axisU, axisV, sampleCount, pad[4] -> 1 packed texel.
    b.setRecord(9, 1);
    b.setIrregularBytes(uint64_t(gfx::anisoTexSize) * gfx::anisoTexSize *
                        wordBytes);
    auto p = ref::makeAnisoParams(kernelSeed("anisotropic-filter"));

    std::vector<Word> weights;
    weights.reserve(p.weights.size());
    for (double w : p.weights)
        weights.push_back(isa::fpToWord(w));
    uint16_t wT = b.addTable("weights", std::move(weights));

    Value texBase = b.constant("texBase", gfx::textureBase);
    Value inv65535 = b.constantF("inv65535", 1.0 / 65535.0);
    Value half = b.constantF("half", 0.5);
    Value one = b.immF(1.0);
    Value c65535 = b.constantF("c65535", 65535.0);
    Value zero = b.immF(0.0);

    Value u = b.inWord(0);
    Value v = b.inWord(1);
    Value au = b.inWord(2);
    Value av = b.inWord(3);
    Value n = b.inWord(4);

    // center = 0.5 * (n - 1), mirroring the reference.
    Value nf = b.op(Op::Itof, n);
    Value center = b.fmul(half, b.fsub(nf, one));

    b.beginLoopVar(n, ref::AnisoParams::maxSamples);
    Value accR = b.carry(zero);
    Value accG = b.carry(zero);
    Value accB = b.carry(zero);
    Value wsum = b.carry(zero);
    {
        Value i = b.loopIdx();
        Value t = b.fsub(b.op(Op::Itof, i), center);
        Value uu = b.fadd(u, b.fmul(t, au));
        Value vv = b.fadd(v, b.fmul(t, av));

        Value xi = b.markOverhead(
            b.opImm(Op::And, b.op(Op::Ftoi, uu), gfx::anisoTexSize - 1));
        Value yi = b.markOverhead(
            b.opImm(Op::And, b.op(Op::Ftoi, vv), gfx::anisoTexSize - 1));
        Value texel =
            b.cachedLoad(texelAddr(b, texBase, xi, yi, gfx::anisoTexLog2));

        // weight index (i*5) & 127.
        Value i5 = b.markOverhead(
            b.add(b.markOverhead(b.opImm(Op::Shl, i, 2)), i));
        Value wIdx = b.markOverhead(b.opImm(Op::And, i5, 127));
        Value w = b.tableLoad(wT, wIdx);

        b.setCarryNext(accR,
                       b.fadd(accR, b.fmul(w, unpackChan(b, texel, 0,
                                                         inv65535))));
        b.setCarryNext(accG,
                       b.fadd(accG, b.fmul(w, unpackChan(b, texel, 1,
                                                         inv65535))));
        b.setCarryNext(accB,
                       b.fadd(accB, b.fmul(w, unpackChan(b, texel, 2,
                                                         inv65535))));
        b.setCarryNext(wsum, b.fadd(wsum, w));
    }
    b.endLoop();

    Value inv = b.fdiv(one, b.exitValue(wsum));
    Value acc[3] = {b.exitValue(accR), b.exitValue(accG),
                    b.exitValue(accB)};
    Value packed = b.imm(0);
    for (unsigned c = 0; c < 3; ++c) {
        Value val = b.fmul(acc[c], inv);
        // Mirror ref::packTexel: clamp, scale, round, pack.
        Value clamped = b.op(Op::Fmin, b.op(Op::Fmax, val, zero), one);
        Value q = b.op(Op::Ftoi,
                       b.fadd(b.fmul(clamped, c65535), half));
        Value shifted = c == 0 ? q : b.opImm(Op::Shl, q, 16 * c);
        packed = c == 0 ? shifted : b.or_(packed, shifted);
    }
    b.outWord(0, packed);
    return b.build();
}

} // namespace dlp::kernels
