#include "mem/cache_model.hh"

namespace dlp::mem {

CacheModel::CacheModel(std::string cname, uint64_t totalBytes, unsigned assoc,
                       unsigned lineBytes, unsigned banks, Cycles hitLat)
    : name(std::move(cname)), line(lineBytes), numBanks(banks), ways(assoc),
      hitTicks(cyclesToTicks(hitLat))
{
    panic_if(banks == 0 || assoc == 0 || lineBytes == 0,
             "degenerate cache %s", name.c_str());
    uint64_t linesTotal = totalBytes / lineBytes;
    uint64_t setsTotal = linesTotal / assoc;
    panic_if(setsTotal < banks, "cache %s too small for %u banks",
             name.c_str(), banks);
    setsPerBank = static_cast<unsigned>(setsTotal / banks);
    sets.assign(static_cast<size_t>(setsPerBank) * banks,
                std::vector<Line>(ways));
    // One access per cycle per bank port.
    ports.assign(banks, sim::Resource(ticksPerCycle));
}

bool
CacheModel::probe(Addr addr, bool isWrite)
{
    Addr lineAddr = addr / line;
    unsigned bank = bankOf(addr);
    unsigned set = static_cast<unsigned>((lineAddr / numBanks) % setsPerBank);
    auto &ways_ = sets[static_cast<size_t>(bank) * setsPerBank + set];
    ++useClock;

    for (auto &w : ways_) {
        if (w.valid && w.tag == lineAddr) {
            w.lastUse = useClock;
            ++nHits;
            return true;
        }
    }
    ++nMisses;

    if (!isWrite) {
        // Read-allocate into the LRU way.
        Line *victim = &ways_[0];
        for (auto &w : ways_) {
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (w.lastUse < victim->lastUse)
                victim = &w;
        }
        victim->valid = true;
        victim->tag = lineAddr;
        victim->lastUse = useClock;
    }
    return false;
}

void
CacheModel::reset()
{
    for (auto &set : sets)
        for (auto &w : set)
            w = Line{};
    for (auto &p : ports)
        p.reset();
    useClock = 0;
    nHits = 0;
    nMisses = 0;
}

} // namespace dlp::mem
