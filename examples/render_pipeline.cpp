/**
 * @file
 * Real-time-graphics example: a two-stage rendering pipeline (vertex
 * lighting followed by textured fragment shading) run end to end on the
 * configurable processor.
 *
 * This is the scenario of Section 4.3's closing discussion: the same
 * homogeneous ALU array executes both pipeline stages -- here
 * sequentially reconfigured between stages; a partitioned-array version
 * is the paper's future-work "dynamic partitioning based on scene
 * attributes".
 */

#include <cinttypes>
#include <cstdio>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;

namespace {

void
runStage(const char *stage, const char *kernel, const char *config,
         uint64_t records, Cycles &totalCycles)
{
    auto wl = kernels::makeWorkload(kernel, records, 404);
    arch::TripsProcessor cpu(arch::configByName(config));
    auto res = cpu.run(*wl);
    fatal_if(!res.verified, "%s failed verification: %s", kernel,
             res.error.c_str());
    totalCycles += res.cycles;
    std::printf("  %-10s %-20s on %-6s: %8" PRIu64 " cycles, %5.2f ops/cycle, "
                "verified\n",
                stage, kernel, config, res.cycles,
                res.opsPerCycle());
}

} // namespace

int
main()
{
    setQuietLogging(true);
    const uint64_t vertices = 2048;
    const uint64_t fragments = 4096;

    std::printf("Two-stage rendering pipeline (%" PRIu64 " vertices, %" PRIu64 " "
                "fragments)\n\n",
                vertices,
                fragments);

    Cycles total = 0;
    // Vertex stage: constant-heavy, regular records -> S-O.
    runStage("vertex", "vertex-simple", "S-O", vertices, total);
    // Fragment stage: irregular texture fetches through the cached L1.
    runStage("fragment", "fragment-simple", "S-O", fragments, total);
    std::printf("\n  frame total: %" PRIu64 " cycles\n\n",
                total);

    std::printf("With skinned characters the vertex stage has "
                "data-dependent bone loops;\nthe flexible machine "
                "switches it to the MIMD configuration instead:\n\n");
    Cycles total2 = 0;
    runStage("vertex", "vertex-skinning", "M-D", vertices, total2);
    runStage("fragment", "fragment-reflection", "S-O", fragments, total2);
    std::printf("\n  frame total: %" PRIu64 " cycles\n",
                total2);
    return 0;
}
