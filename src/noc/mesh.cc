#include "noc/mesh.hh"

#include <cinttypes>

#include "obs/timeline.hh"

namespace dlp::noc {

MeshNetwork::MeshNetwork(unsigned nrows, unsigned ncols, Tick hop)
    : rows(nrows), cols(ncols), hopTicks(hop),
      east(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      west(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      south(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      north(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      edgeOut(nrows, sim::Resource(1)),
      edgeIn(nrows, sim::Resource(1))
{
    panic_if(rows == 0 || cols == 0, "degenerate mesh %ux%u", rows, cols);
    initStats();
}

void
MeshNetwork::initStats()
{
    // Stalls longer than ~2 activations of a saturated link land in the
    // overflow bin; the interesting shape is the low end.
    stallDist = &statGroup.distribution("contentionStallTicks", 0.0, 32.0,
                                        16);
    statGroup.formula("avgHopsPerOperand", [this] {
        return routed ? double(hops) / double(routed) : 0.0;
    });
    statGroup.formula("avgStallPerHop", [this] {
        return hops ? double(contention) / double(hops) : 0.0;
    });

    // Derived at dump time: busy fraction of every unidirectional link
    // over the interval the mesh was active, plus per-direction totals.
    statGroup.setPreDump([this] {
        statGroup.scalar("operandsRouted").set(double(routed));
        statGroup.scalar("totalHops").set(double(hops));
        statGroup.scalar("contentionTicks").set(double(contention));

        Distribution &util =
            statGroup.distribution("linkUtilization", 0.0, 1.0, 20);
        util.reset();
        // Direction order: east, west, south, north, edgeOut, edgeIn.
        VectorStat &byDir = statGroup.vector("grantsByDirection", 6);
        byDir.reset();
        const std::vector<sim::Resource> *sets[6] = {&east,    &west,
                                                     &south,   &north,
                                                     &edgeOut, &edgeIn};
        for (unsigned d = 0; d < 6; ++d) {
            for (const auto &link : *sets[d]) {
                byDir.inc(d, double(link.grants()));
                if (lastActivity > 0) {
                    double busy = double(link.grants()) *
                                  double(link.interval());
                    util.sample(busy / double(lastActivity));
                }
            }
        }
    });
}

sim::Resource &
MeshNetwork::linkFor(Coord at, int drow, int dcol)
{
    size_t idx = static_cast<size_t>(at.row) * cols + at.col;
    if (dcol > 0)
        return east[idx];
    if (dcol < 0)
        return west[idx];
    if (drow > 0)
        return south[idx];
    return north[idx];
}

Tick
MeshNetwork::traverseLink(Coord at, int drow, int dcol, Tick ready)
{
    sim::Resource &link = linkFor(at, drow, dcol);
    Tick grant = link.acquire(ready);
    contention += grant - ready;
    stallDist->sample(double(grant - ready));
    ++hops;
    Tick depart = grant + hopTicks;
    lastActivity = std::max(lastActivity, depart);
    return depart;
}

Tick
MeshNetwork::route(Coord src, Coord dst, Tick inject)
{
    panic_if(src.row >= rows || src.col >= cols, "route from off-grid");
    panic_if(dst.row >= rows || dst.col >= cols, "route to off-grid");
    ++routed;

    // Local bypass: the ALU result feeds its own reservation stations for
    // free on the same tick.
    if (src == dst)
        return inject;

    Tick t = inject;
    Coord cur = src;
    // X first ...
    while (cur.col != dst.col) {
        int dcol = cur.col < dst.col ? 1 : -1;
        t = traverseLink(cur, 0, dcol, t);
        cur.col = static_cast<uint8_t>(cur.col + dcol);
    }
    // ... then Y.
    while (cur.row != dst.row) {
        int drow = cur.row < dst.row ? 1 : -1;
        t = traverseLink(cur, drow, 0, t);
        cur.row = static_cast<uint8_t>(cur.row + drow);
    }
    DPRINTF(Mesh,
            "route (%u,%u)->(%u,%u) inject=%" PRIu64 " arrive=%" PRIu64
            " stall=%" PRIu64,
            src.row, src.col, dst.row, dst.col, inject, t,
            t - inject - Tick(distance(src, dst)) * hopTicks);
    OBS_SIM_SPAN(Mesh, "flit", inject, t - inject,
                 distance(src, dst));
    return t;
}

Tick
MeshNetwork::routeToEdge(Coord src, Tick inject)
{
    panic_if(src.row >= rows || src.col >= cols, "edge route from off-grid");
    ++routed;

    Tick t = inject;
    Coord cur = src;
    while (cur.col != 0) {
        t = traverseLink(cur, 0, -1, t);
        cur.col--;
    }
    // Cross from column 0 into the row's memory port.
    Tick grant = edgeOut[src.row].acquire(t);
    contention += grant - t;
    stallDist->sample(double(grant - t));
    ++hops;
    Tick arrive = grant + hopTicks;
    lastActivity = std::max(lastActivity, arrive);
    DPRINTF(Mesh,
            "toEdge (%u,%u) inject=%" PRIu64 " at-port=%" PRIu64,
            src.row, src.col, inject, arrive);
    OBS_SIM_SPAN(Mesh, "toEdge", inject, arrive - inject, src.col + 1);
    return arrive;
}

Tick
MeshNetwork::routeFromEdge(unsigned row, Coord dst, Tick inject)
{
    panic_if(row >= rows, "edge route from bad row %u", row);
    panic_if(dst.row >= rows || dst.col >= cols, "edge route to off-grid");
    ++routed;

    // Cross from the memory port into column 0 of the row.
    Tick grant = edgeIn[row].acquire(inject);
    contention += grant - inject;
    stallDist->sample(double(grant - inject));
    ++hops;
    Tick t = grant + hopTicks;
    lastActivity = std::max(lastActivity, t);

    Coord cur{static_cast<uint8_t>(row), 0};
    while (cur.col != dst.col) {
        t = traverseLink(cur, 0, 1, t);
        cur.col++;
    }
    while (cur.row != dst.row) {
        int drow = cur.row < dst.row ? 1 : -1;
        t = traverseLink(cur, drow, 0, t);
        cur.row = static_cast<uint8_t>(cur.row + drow);
    }
    DPRINTF(Mesh,
            "fromEdge row %u ->(%u,%u) inject=%" PRIu64 " arrive=%" PRIu64,
            row, dst.row, dst.col, inject, t);
    OBS_SIM_SPAN(Mesh, "fromEdge", inject, t - inject, dst.col + 1);
    return t;
}

void
MeshNetwork::reset()
{
    for (auto *set : {&east, &west, &south, &north, &edgeOut, &edgeIn})
        for (auto &link : *set)
            link.reset();
    routed = 0;
    hops = 0;
    contention = 0;
    lastActivity = 0;
    statGroup.resetAll();
}

} // namespace dlp::noc
