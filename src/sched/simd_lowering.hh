/**
 * @file
 * Lowering of kernels onto the block-dataflow (SIMD-style) machine.
 *
 * Mirrors what the paper's authors did by hand in the TRIPS ISA
 * (Section 5.1: "where possible we statically unrolled the kernels to
 * fill up the instruction storage across the ALUs"):
 *
 *  - If the fully unrolled kernel fits the reservation-station budget it
 *    becomes one resident block replicated U times (U kernel instances
 *    per activation); instruction revitalization then re-fires it
 *    ceil(N/U) times.
 *  - Otherwise the kernel is segmented at its top-level loops: each loop
 *    body becomes a revitalized block (loop induction and carried values
 *    flow through the global register file), straight-line stretches
 *    become their own blocks, and oversized straight-line code (md5) is
 *    topologically split with register spills at the cuts.
 *  - Data-dependent loops are executed worst-case: maxTrip iterations
 *    with select-guarded carries -- the predication cost the paper
 *    ascribes to SIMD execution of data-dependent control.
 *
 * The same lowering serves the baseline ILP machine: without the SMC
 * mechanism, record accesses become individual cached loads; without
 * revitalization the runner pays a full block re-map per activation;
 * without operand revitalization constant register reads re-execute
 * every activation and contend for register-file bandwidth.
 */

#ifndef DLP_SCHED_SIMD_LOWERING_HH
#define DLP_SCHED_SIMD_LOWERING_HH

#include "core/machine.hh"
#include "kernels/ir.hh"
#include "sched/plan.hh"

namespace dlp::sched {

/**
 * Lower a kernel for the given machine.
 *
 * @param k      the kernel
 * @param m      machine parameters (mechanism flags steer codegen)
 * @param layout SMC word addresses of the record streams
 */
SimdPlan lowerSimd(const kernels::Kernel &k, const core::MachineParams &m,
                   const StreamLayout &layout);

} // namespace dlp::sched

#endif // DLP_SCHED_SIMD_LOWERING_HH
