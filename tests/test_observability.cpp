/**
 * @file
 * Tests for the observability layer: trace flags and the DPRINTF sink,
 * the non-scalar statistics (distributions, vectors, formulas) and their
 * snapshots, warn() rate limiting, the JSON writer/parser round trip,
 * and the experiment-result exporter's document shape.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "analysis/experiments.hh"
#include "analysis/export.hh"
#include "analysis/json.hh"
#include "analysis/report.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"

using namespace dlp;
namespace json = dlp::analysis::json;

namespace {

/** RAII: leave the global trace state clean for the next test. */
struct TraceReset
{
    TraceReset() { trace::disableAll(); }

    ~TraceReset()
    {
        trace::disableAll();
        trace::setSink(nullptr);
        trace::setCurTick(0);
    }
};

/** A component the way the engines declare one. */
class Widget
{
  public:
    void
    poke(uint64_t when)
    {
        trace::setCurTick(when);
        DPRINTF(Mesh, "poked with %" PRIu64, when);
    }

  private:
    const char *dlpTraceName() const { return "widget"; }
};

} // namespace

TEST(TraceFlags, NamesAndProgrammaticControl)
{
    TraceReset guard;
    EXPECT_FALSE(trace::anyEnabled());
    EXPECT_STREQ(trace::flagName(trace::Flag::Mesh), "Mesh");
    EXPECT_STREQ(trace::flagName(trace::Flag::SMC), "SMC");
    EXPECT_EQ(trace::flagNames().size(), trace::numFlags);

    trace::enable(trace::Flag::Mesh);
    EXPECT_TRUE(trace::enabled(trace::Flag::Mesh));
    EXPECT_FALSE(trace::enabled(trace::Flag::SMC));
    EXPECT_TRUE(trace::anyEnabled());

    trace::disable(trace::Flag::Mesh);
    EXPECT_FALSE(trace::anyEnabled());
}

TEST(TraceFlags, SetByName)
{
    TraceReset guard;
    EXPECT_TRUE(trace::setByName("SMC"));
    EXPECT_TRUE(trace::enabled(trace::Flag::SMC));
    EXPECT_TRUE(trace::setByName("-SMC"));
    EXPECT_FALSE(trace::enabled(trace::Flag::SMC));

    EXPECT_TRUE(trace::setByName("All"));
    for (unsigned i = 0; i < trace::numFlags; ++i)
        EXPECT_TRUE(trace::enabled(static_cast<trace::Flag>(i)));
    EXPECT_TRUE(trace::setByName("-All"));
    EXPECT_FALSE(trace::anyEnabled());

    setQuietLogging(true);
    EXPECT_FALSE(trace::setByName("NoSuchFlag"));
    setQuietLogging(false);
    EXPECT_FALSE(trace::anyEnabled());
}

TEST(TraceFlags, ParseFlagList)
{
    TraceReset guard;
    trace::parseFlagList("Mesh, SMC");
    EXPECT_TRUE(trace::enabled(trace::Flag::Mesh));
    EXPECT_TRUE(trace::enabled(trace::Flag::SMC));
    EXPECT_FALSE(trace::enabled(trace::Flag::EventQ));

    trace::disableAll();
    trace::parseFlagList("All,-Exec");
    EXPECT_TRUE(trace::enabled(trace::Flag::Mesh));
    EXPECT_FALSE(trace::enabled(trace::Flag::Exec));
}

TEST(TraceFlags, InitFromEnv)
{
    TraceReset guard;
    ::setenv("DLP_TRACE", "Mesh,SMC", 1);
    trace::initFromEnv();
    ::unsetenv("DLP_TRACE");
    EXPECT_TRUE(trace::enabled(trace::Flag::Mesh));
    EXPECT_TRUE(trace::enabled(trace::Flag::SMC));
    EXPECT_FALSE(trace::enabled(trace::Flag::Engine));
}

TEST(TraceOutput, TickComponentMessageFormat)
{
    TraceReset guard;
    std::ostringstream lines;
    trace::setSink(&lines);
    trace::enable(trace::Flag::Mesh);

    Widget w;
    w.poke(42);
    DPRINTF(Mesh, "from free scope");
    trace::disable(trace::Flag::Mesh);
    w.poke(99); // flag off: must not print

    EXPECT_EQ(lines.str(),
              "42: widget: poked with 42\n"
              "42: global: from free scope\n");
}

TEST(WarnDeduplication, SuppressesAfterLimit)
{
    resetWarnDeduplication();
    testing::internal::CaptureStderr();
    for (int i = 0; i < 20; ++i)
        warn("repeated observability test message");
    warn("distinct observability test message");
    std::string err = testing::internal::GetCapturedStderr();
    resetWarnDeduplication();

    size_t count = 0;
    for (size_t pos = 0;
         (pos = err.find("repeated observability", pos)) != std::string::npos;
         ++pos)
        ++count;
    EXPECT_EQ(count, warnRepeatLimit);
    EXPECT_NE(err.find("repeated 5 times"), std::string::npos);
    EXPECT_NE(err.find("distinct observability"), std::string::npos);
}

TEST(WarnDeduplication, LruBoundsTableAndPreservesHotMessages)
{
    resetWarnDeduplication();
    // Quiet logging would skip dedup tracking entirely; swallow the
    // output through the capture instead.
    testing::internal::CaptureStderr();

    // Fill the table exactly: the victim first, then warnTableLimit - 1
    // distinct fillers.
    warn("lru eviction victim message");
    for (size_t i = 0; i + 1 < warnTableLimit; ++i)
        warn("lru filler message %zu", i);
    EXPECT_EQ(warnTableSize(), warnTableLimit);
    EXPECT_EQ(warnOccurrences("lru eviction victim message"), 1u);

    // Re-warning the victim refreshes its recency, so the next overflow
    // evicts the least-recently-warned filler instead.
    warn("lru eviction victim message");
    warn("lru filler message overflow");
    EXPECT_EQ(warnTableSize(), warnTableLimit);
    EXPECT_EQ(warnOccurrences("lru eviction victim message"), 2u);
    EXPECT_EQ(warnOccurrences("lru filler message 0"), 0u); // evicted
    EXPECT_EQ(warnOccurrences("lru filler message overflow"), 1u);

    // Push the victim out (it is now the oldest after the fillers run
    // again) and verify an evicted message starts over as new.
    for (size_t i = 0; i < warnTableLimit; ++i)
        warn("lru second wave %zu", i);
    EXPECT_EQ(warnOccurrences("lru eviction victim message"), 0u);
    warn("lru eviction victim message");
    EXPECT_EQ(warnOccurrences("lru eviction victim message"), 1u);

    testing::internal::GetCapturedStderr();
    resetWarnDeduplication();
}

TEST(TraceFlags, UnknownFlagWarnsOncePerName)
{
    TraceReset guard;
    resetWarnDeduplication();
    testing::internal::CaptureStderr();

    // Same unknown name three ways: direct, inside a list, direct again.
    // The return-value contract is unchanged (false every time) but the
    // warning must fire exactly once for the name.
    EXPECT_FALSE(trace::setByName("BogusWarnOnceFlag"));
    trace::parseFlagList("BogusWarnOnceFlag, Mesh");
    EXPECT_FALSE(trace::setByName("BogusWarnOnceFlag"));
    EXPECT_TRUE(trace::enabled(trace::Flag::Mesh)); // rest of list applies

    std::string err = testing::internal::GetCapturedStderr();
    resetWarnDeduplication();

    size_t count = 0;
    for (size_t pos = 0;
         (pos = err.find("unknown trace flag 'BogusWarnOnceFlag'", pos)) !=
         std::string::npos;
         ++pos)
        ++count;
    EXPECT_EQ(count, 1u);
}

TEST(Distribution, BucketsAndMoments)
{
    Distribution d("lat", 0.0, 10.0, 5);
    for (double v : {1.0, 3.0, 3.0, 9.0})
        d.sample(v);
    d.sample(-1.0); // underflow
    d.sample(10.0); // hi is exclusive: overflow
    d.sample(25.0);

    EXPECT_EQ(d.samples(), 7u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.bucket(0), 1u); // [0,2): 1.0
    EXPECT_EQ(d.bucket(1), 2u); // [2,4): 3.0 x2
    EXPECT_EQ(d.bucket(4), 1u); // [8,10): 9.0
    EXPECT_DOUBLE_EQ(d.minValue(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 25.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.0 / 7.0);
    EXPECT_DOUBLE_EQ(d.bucketWidth(), 2.0);

    // Unbiased sample stdev of {1,3,3,9,-1,10,25}.
    double m = 50.0 / 7.0;
    double ss = 0;
    for (double v : {1.0, 3.0, 3.0, 9.0, -1.0, 10.0, 25.0})
        ss += (v - m) * (v - m);
    EXPECT_NEAR(d.stdev(), std::sqrt(ss / 6.0), 1e-9);

    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucket(1), 0u);
}

TEST(VectorStatTest, LanesAndTotal)
{
    VectorStat v("lanes", 4);
    v.inc(0);
    v.inc(0);
    v.inc(3, 5.0);
    v.set(1, 2.0);
    EXPECT_DOUBLE_EQ(v.at(0), 2.0);
    EXPECT_DOUBLE_EQ(v.at(1), 2.0);
    EXPECT_DOUBLE_EQ(v.at(2), 0.0);
    EXPECT_DOUBLE_EQ(v.total(), 9.0);
    EXPECT_DOUBLE_EQ(v.maxValue(), 5.0);
    EXPECT_EQ(v.size(), 4u);
}

TEST(Formula, EvaluatesAtReadTime)
{
    StatGroup g("test.group");
    Stat &hits = g.scalar("hits");
    Stat &misses = g.scalar("misses");
    g.formula("hitRate", [&] {
        double total = hits.get() + misses.get();
        return total ? hits.get() / total : 0.0;
    });

    hits += 3;
    misses += 1;
    GroupSnapshot snap = g.snapshot();
    EXPECT_DOUBLE_EQ(snap.formulas.at("hitRate"), 0.75);

    // Formulas track later updates (evaluated per snapshot/dump).
    misses += 2;
    EXPECT_DOUBLE_EQ(g.snapshot().formulas.at("hitRate"), 0.5);
}

TEST(StatGroupSnapshot, CarriesAllStatKinds)
{
    StatGroup g("snap.group");
    g.scalar("count") += 7;
    Distribution &d = g.distribution("dist", 0.0, 4.0, 4);
    d.sample(1.0);
    d.sample(3.0);
    g.vector("vec", 3).inc(2, 4.0);
    g.formula("twice", [&] { return g.scalar("count").get() * 2.0; });

    GroupSnapshot snap = g.snapshot();
    EXPECT_EQ(snap.name, "snap.group");
    EXPECT_DOUBLE_EQ(snap.scalars.at("count"), 7.0);
    EXPECT_DOUBLE_EQ(snap.formulas.at("twice"), 14.0);
    EXPECT_EQ(snap.distributions.at("dist").samples(), 2u);
    EXPECT_DOUBLE_EQ(snap.vectors.at("vec").at(2), 4.0);

    // Snapshots are value copies: later samples don't leak in.
    d.sample(2.0);
    EXPECT_EQ(snap.distributions.at("dist").samples(), 2u);
}

TEST(Json, WriteParseRoundTrip)
{
    json::Value doc = json::Value::object();
    doc.set("name", "mesh \"east\" link\n");
    doc.set("count", uint64_t(123456789012345ull));
    doc.set("ratio", 0.3333333333333333);
    doc.set("ok", true);
    doc.set("missing", nullptr);
    json::Value arr = json::Value::array();
    for (int i = 0; i < 4; ++i)
        arr.push(i * 1.5);
    doc.set("buckets", std::move(arr));

    for (unsigned indent : {0u, 2u}) {
        std::string text = json::write(doc, indent);
        json::Value back = json::parse(text);
        EXPECT_EQ(back.at("name").asString(), "mesh \"east\" link\n");
        EXPECT_DOUBLE_EQ(back.at("count").asNumber(), 123456789012345.0);
        EXPECT_DOUBLE_EQ(back.at("ratio").asNumber(), 0.3333333333333333);
        EXPECT_TRUE(back.at("ok").asBool());
        EXPECT_TRUE(back.at("missing").isNull());
        EXPECT_EQ(back.at("buckets").size(), 4u);
        EXPECT_DOUBLE_EQ(back.at("buckets").at(3).asNumber(), 4.5);
    }

    // Integral numbers serialize without a decimal point.
    EXPECT_NE(json::write(doc, 0).find("\"count\":123456789012345"),
              std::string::npos);
}

TEST(Json, ExactSixtyFourBitIntegers)
{
    // Integer-built numbers keep full 64-bit precision through write
    // and parse — no silent narrowing through double above 2^53.
    const uint64_t top = 18446744073709551615ull;   // 2^64 - 1
    const uint64_t odd = (1ull << 53) + 1;          // first non-double
    json::Value doc = json::Value::object();
    doc.set("top", top);
    doc.set("odd", odd);
    doc.set("neg", INT64_MIN);

    std::string text = json::write(doc, 0);
    EXPECT_EQ(text, "{\"top\":18446744073709551615,"
                    "\"odd\":9007199254740993,"
                    "\"neg\":-9223372036854775808}");
    json::Value back = json::parse(text);
    EXPECT_EQ(back.at("top").asUInt64(), top);
    EXPECT_EQ(back.at("odd").asUInt64(), odd);
    EXPECT_EQ(back.at("neg").asInt64(), INT64_MIN);
    EXPECT_EQ(json::write(back, 0), text);  // byte-stable round trip

    // Plain integer literals restore exactly; fractional, exponent
    // and over-wide literals still travel as doubles.
    EXPECT_EQ(json::parse("7").asUInt64(), 7u);
    EXPECT_EQ(json::parse("-3").asInt64(), -3);
    EXPECT_DOUBLE_EQ(json::parse("2.5").asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(json::parse("1e300").asNumber(), 1e300);
    EXPECT_DOUBLE_EQ(json::parse("184467440737095516160").asNumber(),
                     1.8446744073709552e20);

    // The exact accessors convert integral doubles and range-check
    // across signedness instead of wrapping.
    EXPECT_EQ(json::Value(42.0).asUInt64(), 42u);
    EXPECT_THROW(json::Value(-1).asUInt64(), PanicError);
    EXPECT_THROW(json::Value(top).asInt64(), PanicError);
    EXPECT_THROW(json::Value(2.5).asUInt64(), PanicError);
}

TEST(Json, StableKeyOrder)
{
    json::Value doc = json::Value::object();
    doc.set("zebra", 1);
    doc.set("alpha", 2);
    doc.set("zebra", 3); // overwrite keeps first-set position
    std::string text = json::write(doc, 0);
    EXPECT_EQ(text, "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(json::parse("{"), FatalError);
    EXPECT_THROW(json::parse("[1,]"), FatalError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), FatalError);
    EXPECT_THROW(json::parse("nul"), FatalError);
    EXPECT_THROW(json::parse("12 34"), FatalError);
    EXPECT_THROW(json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(json::Value::object().at("nope"), PanicError);
}

TEST(Exporter, ExperimentResultDocumentShape)
{
    setQuietLogging(true);
    auto res = analysis::runExperiment("convert", "baseline", 64);
    ASSERT_TRUE(res.verified);

    json::Value doc = analysis::toJson(res);
    EXPECT_EQ(doc.at("kernel").asString(), "convert");
    EXPECT_EQ(doc.at("config").asString(), "baseline");
    EXPECT_GT(doc.at("cycles").asNumber(), 0.0);
    EXPECT_GT(doc.at("opsPerCycle").asNumber(), 0.0);

    // The required non-scalar stats ride along in the snapshots.
    const json::Value &groups = doc.at("statGroups");
    ASSERT_EQ(groups.size(), 4u);
    bool meshUtil = false, smcConflicts = false, operandWait = false;
    for (const auto &g : groups.items()) {
        const std::string &name = g.at("name").asString();
        if (name == "noc.mesh")
            meshUtil = g.at("distributions").has("linkUtilization");
        if (name == "mem.smc")
            smcConflicts = g.at("vectors").has("bankConflicts");
        if (name == "core.simd")
            operandWait = g.at("distributions").has("operandWaitTicks");
    }
    EXPECT_TRUE(meshUtil);
    EXPECT_TRUE(smcConflicts);
    EXPECT_TRUE(operandWait);

    // Round-trips through the parser.
    json::Value back = json::parse(json::write(doc));
    EXPECT_DOUBLE_EQ(back.at("cycles").asNumber(),
                     doc.at("cycles").asNumber());
}

// The report helpers' documented edge cases (kept alongside the exporter
// tests because the JSON means reuse them).
TEST(ReportGaps, HarmonicMeanRejectsDegenerateInput)
{
    EXPECT_THROW(analysis::harmonicMean({}), PanicError);
    EXPECT_THROW(analysis::harmonicMean({1.0, 0.0}), PanicError);
    EXPECT_DOUBLE_EQ(analysis::harmonicMean({4.0, 4.0}), 4.0);
}
