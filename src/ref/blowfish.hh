/**
 * @file
 * Reference Blowfish (Schneier, 1993).
 *
 * 16-round Feistel cipher on 64-bit blocks with a key-dependent P-array
 * (18 x 32-bit) and four 256-entry S-boxes -- the "indexed constants" the
 * paper's L0 data-store mechanism targets (Table 2 lists a 256-entry
 * lookup table and a 16-iteration loop for this kernel).
 */

#ifndef DLP_REF_BLOWFISH_HH
#define DLP_REF_BLOWFISH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlp::ref {

class Blowfish
{
  public:
    /** Expand a key (1..56 bytes). */
    Blowfish(const uint8_t *key, size_t keyLen);

    /** Encrypt one 64-bit block (two 32-bit halves). */
    void encrypt(uint32_t &left, uint32_t &right) const;

    /** Decrypt one 64-bit block. */
    void decrypt(uint32_t &left, uint32_t &right) const;

    const std::array<uint32_t, 18> &pArray() const { return p; }
    const std::array<std::array<uint32_t, 256>, 4> &sBoxes() const
    {
        return s;
    }

  private:
    uint32_t feistel(uint32_t x) const;

    std::array<uint32_t, 18> p;
    std::array<std::array<uint32_t, 256>, 4> s;
};

} // namespace dlp::ref

#endif // DLP_REF_BLOWFISH_HH
