/**
 * @file
 * Diagnostics produced by the static SPDI verifier.
 *
 * Every finding names a rule from a fixed registry (stable identifier,
 * severity, and the machine invariant it encodes), plus the location --
 * block, instruction index, operand slot -- it anchors to. Reports are
 * plain values: they ride into ExperimentResult, the JSON exporter and
 * the lint_ir summary table without dragging the verifier along.
 */

#ifndef DLP_CHECK_REPORT_HH
#define DLP_CHECK_REPORT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dlp::check {

enum class Severity : uint8_t
{
    Info,     ///< observation; never fails a run
    Advisory, ///< performance hint (PERF-*); never a correctness issue
    Warning,  ///< suspicious but possibly intended; lint-visible only
    Error     ///< the program violates an execution invariant
};

const char *severityName(Severity s);

/** One rule of the registry. */
struct RuleInfo
{
    const char *id;        ///< stable identifier, e.g. "DF-NOPROD"
    Severity severity;     ///< severity every finding of this rule carries
    const char *invariant; ///< one-line statement of the invariant
};

/** The full rule registry, in documentation order. */
const std::vector<RuleInfo> &rules();

/** Registry entry for id; null when unknown. */
const RuleInfo *ruleByName(const std::string &id);

/** One diagnostic. */
struct Diag
{
    std::string rule;    ///< registry identifier
    Severity severity = Severity::Error;
    std::string block;   ///< block or program name ("" = plan level)
    int inst = -1;       ///< instruction index within the block, or -1
    int slot = -1;       ///< operand slot the finding concerns, or -1
    std::string message; ///< human-readable specifics

    /** "block:iN.sM" location prefix (pieces omitted when absent). */
    std::string location() const;
};

/** Outcome of verifying one mapped program against one machine. */
struct Report
{
    std::string program; ///< plan (kernel) name
    std::string config;  ///< machine configuration name
    size_t blocks = 0;   ///< blocks (or MIMD programs) examined
    size_t insts = 0;    ///< instructions examined

    std::vector<Diag> diags;

    /** Record a finding; rule must name a registry entry. */
    void add(const std::string &rule, std::string block, int inst, int slot,
             std::string message);

    size_t errors() const { return count(Severity::Error); }
    size_t warnings() const { return count(Severity::Warning); }
    size_t advisories() const { return count(Severity::Advisory); }

    /** No Error or Warning findings (Info and Advisory are allowed). */
    bool clean() const { return errors() == 0 && warnings() == 0; }

    /**
     * Order findings by (rule, block, inst, slot, message) so exported
     * reports are byte-stable regardless of pass or hash-map iteration
     * order. Stable sort: equal keys keep discovery order.
     */
    void sortFindings();

    size_t count(Severity s) const;

    /** Findings of one rule. */
    size_t countRule(const std::string &rule) const;

    /** True when at least one finding names rule. */
    bool has(const std::string &rule) const { return countRule(rule) > 0; }

    /** Multi-line listing of every finding ("rule sev loc: message"). */
    std::string describe() const;
};

} // namespace dlp::check

#endif // DLP_CHECK_REPORT_HH
