/**
 * @file
 * Configuration-exploration example: take any benchmark kernel from the
 * command line, run it across every Table 5 machine configuration, and
 * report which mechanisms pay off -- the "dynamically tailor the
 * architecture to the application" workflow the paper proposes.
 *
 * The per-configuration simulations run on the sweep driver: they
 * share one immutable workload fixture, run concurrently with --jobs N
 * (or DLP_JOBS), and land in the process-wide result cache, so a
 * refinement pass over an overlapping configuration set skips the
 * configurations already measured.
 *
 *   ./build/examples/explore_configs blowfish
 *   ./build/examples/explore_configs vertex-skinning 4096 --jobs 4
 *   ./build/examples/explore_configs md5 --json md5.json
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/export.hh"
#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "driver/sweep.hh"
#include "kernels/workload.hh"

using namespace dlp;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::string kernel = "blowfish";
    std::string jsonPath;
    uint64_t scale = 0;
    driver::SweepOptions opts;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            fatal_if(i + 1 >= argc, "--json needs a file argument");
            jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            fatal_if(i + 1 >= argc, "--jobs needs a worker count");
            opts.jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (!positional.empty())
        kernel = positional[0];
    scale = positional.size() > 1
                ? std::strtoull(positional[1].c_str(), nullptr, 10)
                : kernels::defaultScale(kernel);

    std::printf("exploring machine configurations for '%s' "
                "(scale %" PRIu64 ", %u workers)\n\n",
                kernel.c_str(), scale, driver::effectiveJobs(opts));

    driver::SweepPlan plan;
    for (const auto &config : arch::allConfigNames())
        plan.tasks.push_back({kernel, config, 1, 11, scale});
    auto results = driver::runSweep(plan, opts);

    std::printf("  %-9s %12s %10s %12s %10s\n", "config", "cycles",
                "ops/cyc", "activations", "speedup");
    Cycles base = 0;
    std::string best;
    Cycles bestCycles = ~Cycles(0);
    for (const auto &res : results) {
        if (res.config == "baseline")
            base = res.cycles;
        if (res.cycles < bestCycles) {
            bestCycles = res.cycles;
            best = res.config;
        }
        std::printf("  %-9s %12" PRIu64 " %10.2f %12" PRIu64 " %9.2fx\n",
                    res.config.c_str(), res.cycles, res.opsPerCycle(),
                    res.activations, double(base) / double(res.cycles));
    }
    std::printf("\n  -> best configuration for %s: %s\n", kernel.c_str(),
                best.c_str());

    if (!jsonPath.empty()) {
        analysis::json::Value doc = analysis::toJson(results);
        doc.set("kernel", kernel);
        doc.set("scale", scale);
        doc.set("bestConfig", best);
        analysis::writeJsonFile(jsonPath, doc);
        std::printf("  wrote %s\n", jsonPath.c_str());
    }
    return 0;
}
