/**
 * @file
 * A timing-only, banked, set-associative cache model.
 *
 * Data always lives in MainMemory (the caches are write-through); this
 * class tracks tags and LRU state to decide hits and charges port
 * occupancy. Keeping the caches timing-only means functional correctness
 * of a simulation can never depend on cache state, which makes the whole
 * memory system trivially coherent.
 */

#ifndef DLP_MEM_CACHE_MODEL_HH
#define DLP_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sim/resource.hh"

namespace dlp::mem {

class CacheModel
{
  public:
    /**
     * @param name       stat prefix
     * @param totalBytes capacity summed over all banks
     * @param assoc      ways per set
     * @param lineBytes  line size
     * @param banks      line-interleaved banks, each with its own port
     * @param hitLat     hit latency in cycles
     */
    CacheModel(std::string name, uint64_t totalBytes, unsigned assoc,
               unsigned lineBytes, unsigned banks, Cycles hitLat);

    /** Which bank services this address. */
    unsigned bankOf(Addr addr) const
    {
        return static_cast<unsigned>((addr / line) % numBanks);
    }

    /**
     * Probe the tags and update LRU/allocation state.
     * Reads allocate on miss; writes are write-through no-allocate but
     * update LRU on hit.
     * @return true on hit.
     */
    bool probe(Addr addr, bool isWrite);

    /** Acquire the bank port for one access starting no earlier than t. */
    Tick
    acquirePort(Addr addr, Tick t)
    {
        return ports[bankOf(addr)].acquire(t);
    }

    Tick hitLatencyTicks() const { return hitTicks; }

    uint64_t hits() const { return nHits; }
    uint64_t misses() const { return nMisses; }
    const std::string &cacheName() const { return name; }

    /** Invalidate all tags and clear occupancy and counters. */
    void reset();

    /** Port resources, exposed for occupancy accounting. */
    std::vector<sim::Resource> &portResources() { return ports; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        uint64_t lastUse = 0;
    };

    std::string name;
    unsigned line;
    unsigned numBanks;
    unsigned ways;
    unsigned setsPerBank;
    Tick hitTicks;

    /// sets[bank * setsPerBank + set] -> ways.
    std::vector<std::vector<Line>> sets;
    std::vector<sim::Resource> ports;

    uint64_t useClock = 0;
    uint64_t nHits = 0;
    uint64_t nMisses = 0;
};

} // namespace dlp::mem

#endif // DLP_MEM_CACHE_MODEL_HH
