/**
 * @file
 * The TRIPS-like operation set.
 *
 * Values are 64-bit machine words (common/types.hh). Floating-point
 * operations interpret the word as an IEEE-754 double; the *32 integer
 * variants mask their result to 32 bits (the crypto and hashing kernels
 * are 32-bit codes). Operations are pure value->value functions here;
 * placement, routing and memory behaviour live in isa/mapped.hh and the
 * core model.
 */

#ifndef DLP_ISA_OPCODES_HH
#define DLP_ISA_OPCODES_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dlp::isa {

/** Functional-unit class an operation executes on. */
enum class FuClass : uint8_t
{
    IntAlu,   ///< single-cycle integer / logic
    IntMul,   ///< pipelined integer multiplier
    FpAdd,    ///< floating add/compare/convert
    FpMul,    ///< floating multiplier
    FpDiv,    ///< unpipelined divide / sqrt
    Mem,      ///< load/store pipeline
    Ctrl      ///< branches, register interface, block control
};

/** Every operation the simulator can execute. */
enum class Op : uint8_t
{
    Nop,

    // Data movement.
    Mov,      ///< result = src0 (explicit fanout / copy)
    Movi,     ///< result = imm
    Sel,      ///< result = src2 ? src0 : src1 (predication support)

    // 64-bit integer arithmetic and logic.
    Add, Sub, Mul, Udiv, Urem,
    And, Or, Xor, Not,
    Shl, Shr, Sar,

    // 32-bit variants (result masked to 32 bits).
    Add32, Sub32, Mul32, Not32,
    Shl32, Shr32, Rotl32, Rotr32,

    // Integer comparisons (result 0/1). Signed unless noted.
    Eq, Ne, Lt, Le, Ltu, Leu,

    // Floating point (operands/results are double bit patterns).
    Fadd, Fsub, Fmul, Fdiv, Fsqrt,
    Fmin, Fmax, Fabs, Fneg,
    Feq, Flt, Fle,
    Itof,     ///< signed int64 -> double
    Ftoi,     ///< double -> int64, truncating

    // Special.
    ActIdx,   ///< current block-activation index (free-running CTR value)

    // Memory operations; address = src0 + imm unless noted.
    Ld,       ///< scalar load (routed to L1 / SMC depending on space)
    St,       ///< scalar store, data = src1
    Lmw,      ///< load-multiple-word: fetch `count` words from the SMC
    Tld,      ///< table lookup, index = src0, table id in imm

    // Register interface (block inputs/outputs in dataflow mode).
    Read,     ///< deliver register imm into the grid
    Write,    ///< write src0 to register imm

    // Sequential (MIMD) control.
    Br,       ///< unconditional branch to imm
    Beqz,     ///< branch to imm if src0 == 0
    Bnez,     ///< branch to imm if src0 != 0
    Halt,     ///< kernel instance complete

    NumOps
};

/** Static properties of an operation. */
struct OpInfo
{
    const char *name;
    FuClass fu;
    Cycles latency;   ///< execute latency in cycles
    uint8_t numSrcs;  ///< architectural source operands
};

/** Look up the static properties of op. */
const OpInfo &opInfo(Op op);

/** Mnemonic for op. */
inline const char *opName(Op op) { return opInfo(op).name; }

/** True for Ld/St/Lmw/Tld. */
bool isMemOp(Op op);

/** True for Br/Beqz/Bnez/Halt. */
bool isCtrlOp(Op op);

/**
 * Execute the pure-function part of an operation.
 *
 * Memory, register-interface and control ops must not be passed here;
 * their semantics involve machine state and are handled by the core.
 *
 * @param op  operation
 * @param a   src0 (or don't-care)
 * @param b   src1
 * @param c   src2 (Sel only)
 * @param imm immediate field (Movi)
 */
Word evalOp(Op op, Word a, Word b, Word c, Word imm);

/** Bit-pattern helpers for floating-point values. */
Word fpToWord(double d);
double wordToFp(Word w);

} // namespace dlp::isa

#endif // DLP_ISA_OPCODES_HH
