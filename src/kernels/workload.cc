#include "kernels/workload.hh"

#include <cinttypes>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/opcodes.hh"
#include "kernels/catalog.hh"
#include "kernels/gfx_layout.hh"
#include "ref/blowfish.hh"
#include "ref/dsp.hh"
#include "ref/fft.hh"
#include "ref/linalg.hh"
#include "ref/md5.hh"
#include "ref/rijndael.hh"
#include "ref/shading.hh"
#include "ref/texture.hh"

namespace dlp::kernels {

namespace {

using isa::fpToWord;
using isa::wordToFp;

/** Texture seed convention shared with tests. */
uint64_t
textureSeed(const std::string &name)
{
    return kernelSeed(name) ^ 0x7e7e7e7eull;
}

ref::Vec3
randomUnitVec(Rng &rng)
{
    double x, y, z, l2;
    do {
        x = rng.uniform(-1, 1);
        y = rng.uniform(-1, 1);
        z = rng.uniform(-1, 1);
        l2 = x * x + y * y + z * z;
    } while (l2 < 0.05);
    double inv = 1.0 / std::sqrt(l2);
    return {x * inv, y * inv, z * inv};
}

} // namespace

bool
Workload::wordsMatch(Word got, Word want, bool fp, double eps)
{
    if (!fp)
        return got == want;
    double g = wordToFp(got);
    double w = wordToFp(want);
    if (std::isnan(g) || std::isnan(w))
        return false;
    return std::fabs(g - w) <= eps * (1.0 + std::fabs(w));
}

namespace {

/**
 * The immutable payload of a single-batch fixture: one precomputed
 * input batch, its golden expected outputs, and the irregular-memory
 * image. Shared read-only between all workload instances stamped from
 * the fixture.
 */
struct BatchData
{
    Kernel kern;
    std::vector<Word> input;
    std::vector<Word> expected;
    std::vector<bool> fpWord;
    double eps = 0.0;
    uint64_t records = 0;
    std::vector<std::pair<Addr, Word>> irregularImage;
};

/** A workload reading one shared precomputed batch. */
class BatchWorkload : public Workload
{
  public:
    explicit BatchWorkload(std::shared_ptr<const BatchData> data)
        : Workload(data->kern), d(std::move(data))
    {
        for (const auto &[addr, word] : d->irregularImage)
            installIrregularWord(addr, word);
    }

    bool
    nextBatch(std::vector<Word> &in, uint64_t &records) override
    {
        if (delivered)
            return false;
        delivered = true;
        in = d->input;
        records = d->records;
        return true;
    }

    void
    consumeOutput(const std::vector<Word> &output) override
    {
        got = output;
    }

    bool
    verify(std::string &err) const override
    {
        if (got.size() != d->expected.size()) {
            err = kern.name + ": output size " + std::to_string(got.size()) +
                  " != " + std::to_string(d->expected.size());
            return false;
        }
        for (size_t i = 0; i < got.size(); ++i) {
            bool fp = d->fpWord[i % kern.outWords];
            if (!wordsMatch(got[i], d->expected[i], fp, d->eps)) {
                err = kern.name + ": record " +
                      std::to_string(i / kern.outWords) + " word " +
                      std::to_string(i % kern.outWords) + " mismatch";
                return false;
            }
        }
        return true;
    }

    uint64_t totalRecords() const override { return d->records; }

  private:
    std::shared_ptr<const BatchData> d;
    bool delivered = false;
    std::vector<Word> got;
};

/** Fixture wrapping one shared BatchData. */
class BatchFixture : public WorkloadFixture
{
  public:
    BatchFixture(const std::string &name, uint64_t scale, uint64_t seed,
                 BatchData data)
        : WorkloadFixture(name, scale, seed),
          d(std::make_shared<const BatchData>(std::move(data)))
    {
        panic_if(d->input.size() != d->records * d->kern.inWords,
                 "%s workload: bad input size", d->kern.name.c_str());
        panic_if(d->expected.size() != d->records * d->kern.outWords,
                 "%s workload: bad expected size", d->kern.name.c_str());
        panic_if(d->fpWord.size() != d->kern.outWords,
                 "%s workload: fp mask size", d->kern.name.c_str());
    }

    std::unique_ptr<Workload>
    instantiate() const override
    {
        return std::make_unique<BatchWorkload>(d);
    }

  private:
    std::shared_ptr<const BatchData> d;
};

/**
 * Immutable payload of the FFT fixture: the random input signal and
 * the golden transform (computed once, not per verify()).
 */
struct FftData
{
    Kernel kern;
    size_t size = 0;
    std::vector<ref::Complex> original;
    std::vector<ref::Complex> expected;
};

/**
 * The 1024-point FFT as ten butterfly record streams. The inter-stage
 * gather/scatter is data reorganization done by the DMA engines /
 * address generators; its cost is outside the kernel measurement (see
 * EXPERIMENTS.md).
 */
class FftWorkload : public Workload
{
  public:
    explicit FftWorkload(std::shared_ptr<const FftData> data)
        : Workload(data->kern), d(std::move(data)), size(d->size),
          cur(d->original)
    {
        ref::bitReverse(cur);
        len = 2;
    }

    bool
    nextBatch(std::vector<Word> &in, uint64_t &records) override
    {
        if (len > size)
            return false;
        half = len / 2;
        records = size / 2;
        in.clear();
        in.reserve(records * 6);
        pairs.clear();
        for (size_t base = 0; base < size; base += len) {
            for (size_t j = 0; j < half; ++j) {
                double ang = -2.0 * M_PI * double(j) / double(len);
                const auto &a = cur[base + j];
                const auto &b = cur[base + j + half];
                in.push_back(fpToWord(a.real()));
                in.push_back(fpToWord(a.imag()));
                in.push_back(fpToWord(b.real()));
                in.push_back(fpToWord(b.imag()));
                in.push_back(fpToWord(std::cos(ang)));
                in.push_back(fpToWord(std::sin(ang)));
                pairs.emplace_back(base + j, base + j + half);
            }
        }
        return true;
    }

    void
    consumeOutput(const std::vector<Word> &output) override
    {
        panic_if(output.size() != pairs.size() * 4, "fft stage output size");
        for (size_t r = 0; r < pairs.size(); ++r) {
            cur[pairs[r].first] = ref::Complex(wordToFp(output[4 * r]),
                                               wordToFp(output[4 * r + 1]));
            cur[pairs[r].second] = ref::Complex(
                wordToFp(output[4 * r + 2]), wordToFp(output[4 * r + 3]));
        }
        len <<= 1;
        totalRecs += pairs.size();
    }

    bool
    verify(std::string &err) const override
    {
        const auto &expect = d->expected;
        for (size_t i = 0; i < size; ++i) {
            if (std::fabs(cur[i].real() - expect[i].real()) >
                    1e-9 * (1 + std::fabs(expect[i].real())) ||
                std::fabs(cur[i].imag() - expect[i].imag()) >
                    1e-9 * (1 + std::fabs(expect[i].imag()))) {
                err = "fft: element " + std::to_string(i) + " mismatch";
                return false;
            }
        }
        return true;
    }

    uint64_t
    totalRecords() const override
    {
        // log2(n) stages of n/2 butterflies each.
        return (size / 2) * floorLog2(size);
    }

    uint64_t numBatches() const override { return floorLog2(size); }

  private:
    std::shared_ptr<const FftData> d;
    size_t size;
    std::vector<ref::Complex> cur;
    size_t len = 2;
    size_t half = 0;
    std::vector<std::pair<size_t, size_t>> pairs;
    uint64_t totalRecs = 0;
};

class FftFixture : public WorkloadFixture
{
  public:
    FftFixture(uint64_t n, uint64_t seed)
        : WorkloadFixture("fft", n, seed)
    {
        panic_if(!isPowerOf2(n) || n < 2, "fft size %" PRIu64, n);
        FftData data;
        data.kern = makeFft();
        data.size = n;
        Rng rng(seed);
        data.original.resize(n);
        for (auto &c : data.original)
            c = ref::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
        data.expected = data.original;
        ref::fft(data.expected);
        d = std::make_shared<const FftData>(std::move(data));
    }

    std::unique_ptr<Workload>
    instantiate() const override
    {
        return std::make_unique<FftWorkload>(d);
    }

  private:
    std::shared_ptr<const FftData> d;
};

/**
 * Immutable payload of the LU fixture: the diagonally dominant input
 * matrix and its golden decomposition (computed once).
 */
struct LuData
{
    Kernel kern;
    size_t dim;
    ref::Matrix original;
    ref::Matrix expected;

    LuData(Kernel k, size_t n, uint64_t seed)
        : kern(std::move(k)), dim(n),
          original(ref::makeDominantMatrix(n, seed)), expected(original)
    {
        ref::luDecompose(expected);
    }
};

/**
 * Right-looking LU: one record stream of rank-1 updates per elimination
 * step. The O(n) column scale (l = a/pivot) is the stream setup done by
 * the scalar control processor (see EXPERIMENTS.md).
 */
class LuWorkload : public Workload
{
  public:
    explicit LuWorkload(std::shared_ptr<const LuData> data)
        : Workload(data->kern), d(std::move(data)), dim(d->dim),
          cur(d->original)
    {
    }

    bool
    nextBatch(std::vector<Word> &in, uint64_t &records) override
    {
        while (k + 1 < dim) {
            // Scale the pivot column (harness-side O(n) step).
            double pivot = cur.at(k, k);
            for (size_t i = k + 1; i < dim; ++i)
                cur.at(i, k) /= pivot;

            size_t m = dim - k - 1;
            if (m == 0) {
                ++k;
                continue;
            }
            records = m * m;
            in.clear();
            in.reserve(records * 3);
            sites.clear();
            for (size_t i = k + 1; i < dim; ++i) {
                for (size_t j = k + 1; j < dim; ++j) {
                    in.push_back(fpToWord(cur.at(i, j)));
                    in.push_back(fpToWord(cur.at(i, k)));
                    in.push_back(fpToWord(cur.at(k, j)));
                    sites.emplace_back(i, j);
                }
            }
            return true;
        }
        return false;
    }

    void
    consumeOutput(const std::vector<Word> &output) override
    {
        panic_if(output.size() != sites.size(), "lu step output size");
        for (size_t r = 0; r < sites.size(); ++r)
            cur.at(sites[r].first, sites[r].second) = wordToFp(output[r]);
        totalRecs += sites.size();
        ++k;
    }

    bool
    verify(std::string &err) const override
    {
        if (ref::maxAbsDiff(cur, d->expected) > 1e-8) {
            err = "lu: decomposition mismatch";
            return false;
        }
        return true;
    }

    uint64_t
    totalRecords() const override
    {
        uint64_t total = 0;
        for (uint64_t s = 1; s < dim; ++s)
            total += s * s;
        return total;
    }

    uint64_t numBatches() const override { return dim > 1 ? dim - 1 : 1; }

  private:
    std::shared_ptr<const LuData> d;
    size_t dim;
    ref::Matrix cur;
    size_t k = 0;
    std::vector<std::pair<size_t, size_t>> sites;
    uint64_t totalRecs = 0;
};

class LuFixture : public WorkloadFixture
{
  public:
    LuFixture(uint64_t n, uint64_t seed)
        : WorkloadFixture("lu", n, seed),
          d(std::make_shared<const LuData>(makeLu(), n, seed))
    {
    }

    std::unique_ptr<Workload>
    instantiate() const override
    {
        return std::make_unique<LuWorkload>(d);
    }

  private:
    std::shared_ptr<const LuData> d;
};

// ---------------------------------------------------------------------
// Per-kernel dataset + golden-model generators
// ---------------------------------------------------------------------

BatchData
makeConvertData(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        double rgb[3] = {rng.uniform(), rng.uniform(), rng.uniform()};
        double yiq[3];
        ref::rgbToYiq(rgb, yiq);
        for (double v : rgb)
            d.input.push_back(fpToWord(v));
        for (double v : yiq)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeConvert();
    d.fpWord = std::vector<bool>(3, true);
    d.eps = 1e-9;
    d.records = n;
    return d;
}

BatchData
makeDctData(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        double block[64], out[64];
        for (auto &v : block)
            v = rng.uniform(-128, 128);
        ref::dct8x8(block, out);
        for (double v : block)
            d.input.push_back(fpToWord(v));
        for (double v : out)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeDct();
    d.fpWord = std::vector<bool>(64, true);
    d.eps = 1e-9;
    d.records = n;
    return d;
}

BatchData
makeHighpassData(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        double window[9];
        for (auto &v : window)
            v = rng.uniform();
        for (double v : window)
            d.input.push_back(fpToWord(v));
        d.expected.push_back(fpToWord(ref::highpass3x3(window)));
    }
    d.kern = makeHighpass();
    d.fpWord = {true};
    d.eps = 1e-9;
    d.records = n;
    return d;
}

BatchData
makeMd5Data(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        uint32_t block[16];
        for (auto &w : block)
            w = static_cast<uint32_t>(rng.next());
        ref::Md5State st = {static_cast<uint32_t>(rng.next()),
                            static_cast<uint32_t>(rng.next()),
                            static_cast<uint32_t>(rng.next()),
                            static_cast<uint32_t>(rng.next())};
        for (int i = 0; i < 8; ++i)
            d.input.push_back(Word(block[2 * i]) |
                              (Word(block[2 * i + 1]) << 32));
        d.input.push_back(Word(st[0]) | (Word(st[1]) << 32));
        d.input.push_back(Word(st[2]) | (Word(st[3]) << 32));

        ref::md5Compress(st, block);
        d.expected.push_back(Word(st[0]) | (Word(st[1]) << 32));
        d.expected.push_back(Word(st[2]) | (Word(st[3]) << 32));
    }
    d.kern = makeMd5();
    d.fpWord = {false, false};
    d.eps = 0.0;
    d.records = n;
    return d;
}

BatchData
makeBlowfishData(uint64_t n, uint64_t seed)
{
    auto key = kernelKeyBytes("blowfish", 16);
    ref::Blowfish bf(key.data(), key.size());
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        Word plain = rng.next();
        d.input.push_back(plain);
        uint32_t l = static_cast<uint32_t>(plain >> 32);
        uint32_t rr = static_cast<uint32_t>(plain);
        bf.encrypt(l, rr);
        d.expected.push_back((Word(l) << 32) | rr);
    }
    d.kern = makeBlowfish();
    d.fpWord = {false};
    d.eps = 0.0;
    d.records = n;
    return d;
}

BatchData
makeRijndaelData(uint64_t n, uint64_t seed)
{
    auto key = kernelKeyBytes("rijndael", 16);
    ref::Aes128 aes(key.data());
    Rng rng(seed);

    auto packBlock = [](const uint8_t bytes[16], Word out[2]) {
        uint32_t w[4];
        for (int i = 0; i < 4; ++i)
            w[i] = (uint32_t(bytes[4 * i]) << 24) |
                   (uint32_t(bytes[4 * i + 1]) << 16) |
                   (uint32_t(bytes[4 * i + 2]) << 8) | bytes[4 * i + 3];
        out[0] = (Word(w[0]) << 32) | w[1];
        out[1] = (Word(w[2]) << 32) | w[3];
    };

    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        uint8_t plain[16], cipher[16];
        for (auto &p : plain)
            p = static_cast<uint8_t>(rng.next());
        aes.encrypt(plain, cipher);
        Word w[2];
        packBlock(plain, w);
        d.input.push_back(w[0]);
        d.input.push_back(w[1]);
        packBlock(cipher, w);
        d.expected.push_back(w[0]);
        d.expected.push_back(w[1]);
    }
    d.kern = makeRijndael();
    d.fpWord = {false, false};
    d.eps = 0.0;
    d.records = n;
    return d;
}

BatchData
makeVertexSimpleData(uint64_t n, uint64_t seed)
{
    auto p = ref::makeVertexSimpleParams(kernelSeed("vertex-simple"));
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        ref::Vec3 nrm = randomUnitVec(rng);
        double rec[7] = {rng.uniform(-2, 2), rng.uniform(-2, 2),
                         rng.uniform(-2, 2), nrm.x, nrm.y, nrm.z,
                         rng.uniform()};
        double out[6];
        ref::vertexSimple(rec, out, p);
        for (double v : rec)
            d.input.push_back(fpToWord(v));
        for (double v : out)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeVertexSimple();
    d.fpWord = std::vector<bool>(6, true);
    d.eps = 1e-9;
    d.records = n;
    return d;
}

BatchData
makeFragmentSimpleData(uint64_t n, uint64_t seed)
{
    auto p = ref::makeFragmentSimpleParams(kernelSeed("fragment-simple"));
    ref::Texture2D tex(gfx::fragTexSize, gfx::fragTexSize);
    tex.fillNoise(textureSeed("fragment-simple"));

    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        ref::Vec3 nrm = randomUnitVec(rng);
        ref::Vec3 light = randomUnitVec(rng);
        double rec[8] = {nrm.x,
                         nrm.y,
                         nrm.z,
                         rng.uniform(4.0, gfx::fragTexSize - 4.0),
                         rng.uniform(4.0, gfx::fragTexSize - 4.0),
                         light.x,
                         light.y,
                         light.z};
        double out[4];
        ref::fragmentSimple(rec, out, tex, p);
        for (double v : rec)
            d.input.push_back(fpToWord(v));
        for (double v : out)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeFragmentSimple();
    d.fpWord = std::vector<bool>(4, true);
    d.eps = 1e-9;
    d.records = n;
    tex.blit([&d](uint64_t off, Word w) {
        d.irregularImage.emplace_back(gfx::textureBase + off * wordBytes, w);
    });
    return d;
}

BatchData
makeVertexReflectionData(uint64_t n, uint64_t seed)
{
    auto p = ref::makeVertexReflectionParams(kernelSeed("vertex-reflection"));
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        ref::Vec3 nrm = randomUnitVec(rng);
        double rec[9] = {rng.uniform(-2, 2),
                         rng.uniform(-2, 2),
                         rng.uniform(-2, 2),
                         nrm.x,
                         nrm.y,
                         nrm.z,
                         rng.uniform(),
                         rng.uniform(),
                         rng.uniform()};
        double out[6];
        ref::vertexReflection(rec, out, p);
        for (double v : rec)
            d.input.push_back(fpToWord(v));
        for (double v : out)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeVertexReflection();
    d.fpWord = std::vector<bool>(6, true);
    d.eps = 1e-9;
    d.records = n;
    return d;
}

BatchData
makeFragmentReflectionData(uint64_t n, uint64_t seed)
{
    auto p = ref::makeFragmentReflectionParams(
        kernelSeed("fragment-reflection"));
    ref::CubeMap cube(gfx::cubeFaceSize);
    cube.fillNoise(textureSeed("fragment-reflection"));

    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        ref::Vec3 dir = randomUnitVec(rng);
        double rec[5] = {dir.x, dir.y, dir.z, rng.uniform(), 0.0};
        double out[3];
        ref::fragmentReflection(rec, out, cube, p);
        for (double v : rec)
            d.input.push_back(fpToWord(v));
        for (double v : out)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeFragmentReflection();
    d.fpWord = std::vector<bool>(3, true);
    d.eps = 1e-9;
    d.records = n;
    for (unsigned f = 0; f < 6; ++f) {
        Addr faceBase = gfx::textureBase +
                        Addr(f) * gfx::cubeFaceSize * gfx::cubeFaceSize *
                            wordBytes;
        cube.face(f).blit([&d, faceBase](uint64_t off, Word w) {
            d.irregularImage.emplace_back(faceBase + off * wordBytes, w);
        });
    }
    return d;
}

BatchData
makeSkinningData(uint64_t n, uint64_t seed)
{
    auto p = ref::makeSkinningParams(kernelSeed("vertex-skinning"));
    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        ref::Vec3 pos{rng.uniform(-2, 2), rng.uniform(-2, 2),
                      rng.uniform(-2, 2)};
        ref::Vec3 nrm = randomUnitVec(rng);
        unsigned count = 1 + static_cast<unsigned>(rng.below(4));
        unsigned idx[4] = {0, 0, 0, 0};
        double w[4] = {0, 0, 0, 0};
        double sum = 0;
        for (unsigned i = 0; i < count; ++i) {
            idx[i] = static_cast<unsigned>(
                rng.below(ref::SkinningParams::maxBones));
            w[i] = rng.uniform(0.1, 1.0);
            sum += w[i];
        }
        for (unsigned i = 0; i < count; ++i)
            w[i] /= sum;

        double clip[3], color[3], outN[3];
        ref::vertexSkinning(pos, nrm, count, idx, w, 0.9, clip, color, outN,
                            p);

        d.input.push_back(fpToWord(pos.x));
        d.input.push_back(fpToWord(pos.y));
        d.input.push_back(fpToWord(pos.z));
        d.input.push_back(fpToWord(nrm.x));
        d.input.push_back(fpToWord(nrm.y));
        d.input.push_back(fpToWord(nrm.z));
        d.input.push_back(count);
        for (unsigned i = 0; i < 4; ++i)
            d.input.push_back(idx[i]);
        for (unsigned i = 0; i < 4; ++i)
            d.input.push_back(fpToWord(w[i]));
        d.input.push_back(fpToWord(0.9));

        for (double v : clip)
            d.expected.push_back(fpToWord(v));
        for (double v : color)
            d.expected.push_back(fpToWord(v));
        for (double v : outN)
            d.expected.push_back(fpToWord(v));
    }
    d.kern = makeVertexSkinning();
    d.fpWord = std::vector<bool>(9, true);
    d.eps = 1e-9;
    d.records = n;
    return d;
}

BatchData
makeAnisoData(uint64_t n, uint64_t seed)
{
    auto p = ref::makeAnisoParams(kernelSeed("anisotropic-filter"));
    ref::Texture2D tex(gfx::anisoTexSize, gfx::anisoTexSize);
    tex.fillNoise(textureSeed("anisotropic-filter"));

    Rng rng(seed);
    BatchData d;
    for (uint64_t r = 0; r < n; ++r) {
        double u = rng.uniform(64.0, gfx::anisoTexSize - 64.0);
        double v = rng.uniform(64.0, gfx::anisoTexSize - 64.0);
        double au = rng.uniform(-1.5, 1.5);
        double av = rng.uniform(-1.5, 1.5);
        unsigned samples =
            1 + static_cast<unsigned>(rng.below(ref::AnisoParams::maxSamples));
        Word out = ref::anisotropicFilter(u, v, au, av, samples, tex, p);

        d.input.push_back(fpToWord(u));
        d.input.push_back(fpToWord(v));
        d.input.push_back(fpToWord(au));
        d.input.push_back(fpToWord(av));
        d.input.push_back(samples);
        for (int pad = 0; pad < 4; ++pad)
            d.input.push_back(0);
        d.expected.push_back(out);
    }
    d.kern = makeAnisotropic();
    d.fpWord = {false};
    d.eps = 0.0;
    d.records = n;
    tex.blit([&d](uint64_t off, Word w) {
        d.irregularImage.emplace_back(gfx::textureBase + off * wordBytes, w);
    });
    return d;
}

} // namespace

std::shared_ptr<const WorkloadFixture>
makeFixture(const std::string &name, uint64_t scale, uint64_t seed)
{
    if (name == "fft")
        return std::make_shared<FftFixture>(scale, seed);
    if (name == "lu")
        return std::make_shared<LuFixture>(scale, seed);

    BatchData d;
    if (name == "convert") {
        d = makeConvertData(scale, seed);
    } else if (name == "dct") {
        d = makeDctData(scale, seed);
    } else if (name == "highpassfilter") {
        d = makeHighpassData(scale, seed);
    } else if (name == "md5") {
        d = makeMd5Data(scale, seed);
    } else if (name == "blowfish") {
        d = makeBlowfishData(scale, seed);
    } else if (name == "rijndael") {
        d = makeRijndaelData(scale, seed);
    } else if (name == "vertex-simple") {
        d = makeVertexSimpleData(scale, seed);
    } else if (name == "fragment-simple") {
        d = makeFragmentSimpleData(scale, seed);
    } else if (name == "vertex-reflection") {
        d = makeVertexReflectionData(scale, seed);
    } else if (name == "fragment-reflection") {
        d = makeFragmentReflectionData(scale, seed);
    } else if (name == "vertex-skinning") {
        d = makeSkinningData(scale, seed);
    } else if (name == "anisotropic-filter") {
        d = makeAnisoData(scale, seed);
    } else {
        fatal("no workload for kernel '%s'", name.c_str());
    }
    return std::make_shared<BatchFixture>(name, scale, seed, std::move(d));
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, uint64_t scale, uint64_t seed)
{
    return makeFixture(name, scale, seed)->instantiate();
}

uint64_t
defaultScale(const std::string &name)
{
    if (name == "fft")
        return 1024; // transform length (Table 1: 1024-point FFT)
    if (name == "lu")
        return 48; // matrix dimension (scaled down from 1024; see docs)
    if (name == "dct")
        return 192;
    if (name == "md5" || name == "rijndael")
        return 768;
    if (name == "anisotropic-filter")
        return 512;
    if (name == "vertex-skinning")
        return 1536;
    return 2048;
}

} // namespace dlp::kernels
