# Empty compiler generated dependencies file for dlp_core.
# This may be replaced when dependencies are built.
