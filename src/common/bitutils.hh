/**
 * @file
 * Small bit-manipulation helpers used by the ISA, caches and kernels.
 */

#ifndef DLP_COMMON_BITUTILS_HH
#define DLP_COMMON_BITUTILS_HH

#include <cstdint>

#include "common/logging.hh"

namespace dlp {

/** True if x is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be non-zero. */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** ceil(log2(x)); x must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** Round v up to the next multiple of align (align must be a power of 2). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round v down to a multiple of align (align must be a power of 2). */
constexpr uint64_t
roundDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of v. */
constexpr uint64_t
bits(uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo == 63) ? ~uint64_t(0)
                                        : ((uint64_t(1) << (hi - lo + 1)) - 1));
}

/** Rotate a 32-bit value left. */
constexpr uint32_t
rotl32(uint32_t v, unsigned s)
{
    s &= 31;
    return s == 0 ? v : (v << s) | (v >> (32 - s));
}

/** Rotate a 32-bit value right. */
constexpr uint32_t
rotr32(uint32_t v, unsigned s)
{
    s &= 31;
    return s == 0 ? v : (v >> s) | (v << (32 - s));
}

/** Ceiling division for unsigned integers. */
constexpr uint64_t
divCeil(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace dlp

#endif // DLP_COMMON_BITUTILS_HH
