#include "sched/linearize.hh"

#include <algorithm>
#include <map>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dlp::sched {

using kernels::Kernel;
using kernels::KernelBuilder;
using kernels::LoopId;
using kernels::Node;
using kernels::NodeKind;
using kernels::topLevel;
using isa::Op;
using isa::SeqInst;

namespace {

struct LoopExtent
{
    size_t first = ~size_t(0);
    size_t last = 0;
};

class Linearizer
{
  public:
    Linearizer(const Kernel &kern, const core::MachineParams &mach,
               const StreamLayout &lay)
        : k(kern), m(mach), layout(lay)
    {
        extents.resize(k.loops.size());
        for (size_t i = 0; i < k.nodes.size(); ++i) {
            LoopId l = k.nodes[i].loop;
            while (l != topLevel) {
                extents[l].first = std::min(extents[l].first, i);
                extents[l].last = std::max(extents[l].last, i);
                l = k.loops[l].parent;
            }
        }
        computeLastUse();
    }

    MimdPlan
    lower()
    {
        plan.name = k.name;
        plan.layout = layout;
        plan.recIdxReg = 0;
        plan.strideReg = 1;
        plan.recCountReg = 2;
        nextFixed = 3;

        // Hoist constants into registers until only a working pool of
        // temporaries remains; the rest become inline immediate moves.
        unsigned hoistLimit =
            m.tileRegs > workingPool ? m.tileRegs - workingPool : 0;
        constReg.assign(k.constants.size(), 0xff);
        for (size_t c = 0; c < k.constants.size() && nextFixed < hoistLimit;
             ++c) {
            constReg[c] = static_cast<uint8_t>(nextFixed);
            plan.initialRegs.emplace_back(nextFixed, k.constants[c].value);
            ++nextFixed;
        }
        for (unsigned r = nextFixed; r < m.tileRegs; ++r)
            freeRegs.push_back(static_cast<uint8_t>(r));

        // Record loop skeleton.
        uint8_t t = allocTemp();
        emitOp2(Op::Ltu, t, plan.recIdxReg, plan.recCountReg, true);
        size_t preCheck = emitBranch(Op::Beqz, t, 0);
        size_t top = code().size();

        emitRange(0, k.nodes.size(), topLevel);
        releaseBodyCaches();

        emitOp2(Op::Add, static_cast<uint8_t>(plan.recIdxReg),
                static_cast<uint8_t>(plan.recIdxReg),
                static_cast<uint8_t>(plan.strideReg), true);
        emitOp2(Op::Ltu, t, static_cast<uint8_t>(plan.recIdxReg),
                static_cast<uint8_t>(plan.recCountReg), true);
        size_t backEdge = emitBranch(Op::Bnez, t, top);
        (void)backEdge;
        size_t haltIdx = code().size();
        SeqInst halt;
        halt.op = Op::Halt;
        halt.overhead = true;
        code().push_back(halt);
        code()[preCheck].branchTarget = static_cast<uint32_t>(haltIdx);
        freeTemp(t);

        plan.program.name = k.name;
        plan.program.numRegs = m.tileRegs;
        fatal_if(plan.program.code.size() > m.l0InstEntries,
                 "kernel %s: MIMD program (%zu insts) exceeds the L0 "
                 "instruction store (%u entries)",
                 k.name.c_str(), plan.program.code.size(), m.l0InstEntries);
        return std::move(plan);
    }

  private:
    std::vector<SeqInst> &code() { return plan.program.code; }

    // --- Register management -------------------------------------------

    uint8_t
    allocTemp()
    {
        fatal_if(freeRegs.empty(),
                 "kernel %s: out of MIMD registers (%u per tile)",
                 k.name.c_str(), m.tileRegs);
        uint8_t r = freeRegs.back();
        freeRegs.pop_back();
        return r;
    }

    void freeTemp(uint8_t r) { freeRegs.push_back(r); }

    /**
     * Last static emission position after which a node's register can be
     * recycled: the raw last consumer, widened to the end of any loop
     * that contains a consumer but not the definition (the value is
     * re-read on every iteration).
     */
    void
    computeLastUse()
    {
        lastUse.assign(k.nodes.size(), 0);
        auto use = [&](uint32_t def, size_t at) {
            if (def == kernels::noValue)
                return;
            // Widen across loops that contain the use but not the def.
            LoopId dl = k.nodes[def].loop;
            LoopId ul = k.nodes[at].loop;
            size_t pos = at;
            for (LoopId l = ul; l != topLevel; l = k.loops[l].parent) {
                bool containsDef = false;
                for (LoopId x = dl; x != topLevel; x = k.loops[x].parent)
                    if (x == l)
                        containsDef = true;
                if (!containsDef)
                    pos = std::max(pos, extents[l].last);
            }
            lastUse[def] = std::max(lastUse[def], pos);
        };

        for (size_t i = 0; i < k.nodes.size(); ++i) {
            const Node &n = k.nodes[i];
            for (unsigned s = 0; s < 3; ++s)
                if (!(s == 1 && n.immB))
                    use(n.src[s], i);
        }
        for (const auto &c : k.carries) {
            use(c.init, extents[c.loop].first);
            use(c.next, extents[c.loop].last);
        }
        for (size_t l = 0; l < k.loops.size(); ++l) {
            if (k.loops[l].tripValue != kernels::noValue)
                use(k.loops[l].tripValue, extents[l].last);
        }
        // A WordOf aliases its wide load's registers: the wide load
        // stays live as long as any of its words does.
        for (size_t i = k.nodes.size(); i-- > 0;) {
            const Node &n = k.nodes[i];
            if (n.kind == NodeKind::WordOf)
                lastUse[n.src[0]] =
                    std::max(lastUse[n.src[0]], lastUse[i]);
        }
    }

    void
    releaseAfter(size_t nodeIdx)
    {
        // Free registers whose owning node's live range ends here.
        for (auto it = owned.begin(); it != owned.end();) {
            if (lastUse[it->first] <= nodeIdx && it->first <= nodeIdx) {
                freeTemp(it->second);
                it = owned.erase(it);
            } else {
                ++it;
            }
        }
        for (auto it = wideOwner.begin(); it != wideOwner.end();) {
            if (lastUse[it->first] <= nodeIdx && it->first <= nodeIdx) {
                for (uint8_t r : wideRegs.at(it->first))
                    freeTemp(r);
                wideRegs.erase(it->first);
                it = wideOwner.erase(it);
            } else {
                ++it;
            }
        }
    }

    /** Register holding node i's value. */
    uint8_t
    regOf(uint32_t i)
    {
        auto it = nodeReg.find(i);
        if (it == nodeReg.end()) {
            // Non-hoisted constants materialize lazily at first use so
            // a kernel declaring dozens of constants up front (md5's 64
            // T values) doesn't hold dozens of registers at once.
            const Node &n = k.nodes[i];
            if (n.kind == NodeKind::Const) {
                uint8_t rd = allocTemp();
                emitMovi(rd, k.constants[static_cast<size_t>(n.imm)].value,
                         true);
                define(i, rd, true);
                return rd;
            }
            panic("kernel %s: node %u has no register", k.name.c_str(), i);
        }
        return it->second;
    }

    void
    define(uint32_t node, uint8_t reg, bool owns)
    {
        nodeReg[node] = reg;
        if (owns)
            owned[node] = reg;
    }

    // --- Emission helpers -------------------------------------------------

    void
    emitOp2(Op op, uint8_t rd, uint8_t a, uint8_t b, bool overhead)
    {
        SeqInst si;
        si.op = op;
        si.rd = rd;
        si.rs[0] = a;
        si.rs[1] = b;
        si.overhead = overhead;
        code().push_back(si);
    }

    void
    emitOpImm(Op op, uint8_t rd, uint8_t a, Word imm, bool overhead)
    {
        SeqInst si;
        si.op = op;
        si.rd = rd;
        si.rs[0] = a;
        si.imm = imm;
        si.immB = true;
        si.overhead = overhead;
        code().push_back(si);
    }

    void
    emitMovi(uint8_t rd, Word imm, bool overhead)
    {
        SeqInst si;
        si.op = Op::Movi;
        si.rd = rd;
        si.imm = imm;
        si.overhead = overhead;
        code().push_back(si);
    }

    size_t
    emitBranch(Op op, uint8_t cond, uint32_t target)
    {
        SeqInst si;
        si.op = op;
        si.rs[0] = cond;
        si.branchTarget = target;
        si.overhead = true;
        code().push_back(si);
        return code().size() - 1;
    }

    // --- Address synthesis -------------------------------------------------

    /** Register with recIdx scaled by recWords plus base (cached). */
    uint8_t
    regionAddr(uint8_t &cache, unsigned recWords, Addr base)
    {
        if (cache != 0xff)
            return cache;
        uint8_t r = allocTemp();
        if (recWords == 1) {
            if (base == 0) {
                emitOp2(Op::Mov, r, static_cast<uint8_t>(plan.recIdxReg), 0,
                        true);
            } else {
                emitOpImm(Op::Add, r, static_cast<uint8_t>(plan.recIdxReg),
                          base, true);
            }
        } else {
            if (isPowerOf2(recWords))
                emitOpImm(Op::Shl, r, static_cast<uint8_t>(plan.recIdxReg),
                          floorLog2(recWords), true);
            else
                emitOpImm(Op::Mul, r, static_cast<uint8_t>(plan.recIdxReg),
                          recWords, true);
            if (base != 0)
                emitOpImm(Op::Add, r, r, base, true);
        }
        cache = r;
        return r;
    }

    uint8_t inAddr() { return regionAddr(inAddrReg, k.inWords, layout.inBase); }
    uint8_t outAddr()
    {
        return regionAddr(outAddrReg, k.outWords, layout.outBase);
    }
    uint8_t scratchAddr()
    {
        return regionAddr(scratchAddrReg, k.scratchWords,
                          layout.scratchBase);
    }

    void
    releaseBodyCaches()
    {
        for (uint8_t *cache : {&inAddrReg, &outAddrReg, &scratchAddrReg}) {
            if (*cache != 0xff) {
                freeTemp(*cache);
                *cache = 0xff;
            }
        }
    }

    // --- Structured walk ----------------------------------------------------

    void
    emitRange(size_t first, size_t last, LoopId level)
    {
        size_t i = first;
        while (i < last) {
            LoopId nl = k.nodes[i].loop;
            if (nl == level) {
                emitNode(static_cast<uint32_t>(i));
                releaseAfter(i);
                ++i;
                continue;
            }
            LoopId child = nl;
            while (k.loops[child].parent != level)
                child = k.loops[child].parent;
            emitLoop(child);
            i = extents[child].last + 1;
            releaseAfter(i - 1);
        }
    }

    void
    emitLoop(LoopId l)
    {
        const auto &li = k.loops[l];
        bool variable = li.staticTrip == 0;

        uint8_t idx = allocTemp();
        emitMovi(idx, 0, true);
        loopIdxReg[l] = idx;

        for (uint32_t c : li.carries) {
            uint8_t reg = allocTemp();
            carryRegs[c] = reg;
            emitOp2(Op::Mov, reg, regOf(k.carries[c].init), 0, true);
            nodeReg[k.carries[c].node] = reg;
        }

        uint8_t t = allocTemp();
        size_t preCheck = ~size_t(0);
        if (variable) {
            // The trip count is record data; guard against zero trips.
            emitOp2(Op::Ltu, t, idx, regOf(li.tripValue), true);
            preCheck = emitBranch(Op::Beqz, t, 0);
        }

        size_t top = code().size();
        emitRange(extents[l].first, extents[l].last + 1, l);

        for (uint32_t c : li.carries) {
            emitOp2(Op::Mov, carryRegs[c], regOf(k.carries[c].next), 0,
                    true);
        }
        emitOpImm(Op::Add, idx, idx, 1, true);
        if (variable)
            emitOp2(Op::Ltu, t, idx, regOf(li.tripValue), true);
        else
            emitOpImm(Op::Ltu, t, idx, li.staticTrip, true);
        emitBranch(Op::Bnez, t, static_cast<uint32_t>(top));
        if (preCheck != ~size_t(0))
            code()[preCheck].branchTarget =
                static_cast<uint32_t>(code().size());

        freeTemp(t);
        freeTemp(idx);
        loopIdxReg.erase(l);
        // Carry registers stay live: LoopExit nodes alias them.
    }

    void
    emitNode(uint32_t i)
    {
        const Node &n = k.nodes[i];
        switch (n.kind) {
          case NodeKind::Compute: {
            if (n.op == Op::Movi) {
                uint8_t rd = allocTemp();
                emitMovi(rd, n.imm, n.overhead);
                define(i, rd, true);
                return;
            }
            uint8_t rd = allocTemp();
            SeqInst si;
            si.op = n.op;
            si.rd = rd;
            si.imm = n.imm;
            si.immB = n.immB;
            si.overhead = n.overhead;
            const auto &info = isa::opInfo(n.op);
            for (unsigned s = 0; s < info.numSrcs && s < isa::maxSrcs;
                 ++s) {
                if (s == 1 && n.immB)
                    continue;
                si.rs[s] = regOf(n.src[s]);
            }
            code().push_back(si);
            define(i, rd, true);
            return;
          }
          case NodeKind::Const: {
            size_t c = static_cast<size_t>(n.imm);
            if (constReg[c] != 0xff)
                define(i, constReg[c], false);
            // Non-hoisted constants materialize lazily in regOf().
            return;
          }
          case NodeKind::RecIdx:
            define(i, static_cast<uint8_t>(plan.recIdxReg), false);
            return;
          case NodeKind::LoopIdx:
            define(i, loopIdxReg.at(static_cast<LoopId>(n.imm)), false);
            return;
          case NodeKind::InWord: {
            uint8_t rd = allocTemp();
            emitMem(Op::Ld, rd, inAddr(), 0xff, n.imm, isa::MemSpace::Smc);
            define(i, rd, true);
            return;
          }
          case NodeKind::InWordAt: {
            uint8_t addr = allocTemp();
            emitOp2(Op::Add, addr, inAddr(), regOf(n.src[0]), true);
            uint8_t rd = allocTemp();
            emitMem(Op::Ld, rd, addr, 0xff, 0, isa::MemSpace::Smc);
            freeTemp(addr);
            define(i, rd, true);
            return;
          }
          case NodeKind::InWide:
          case NodeKind::ScratchWide: {
            // No wide loads on the MIMD tiles: expand to scalar loads
            // (Section 5.3: in the MIMD model a vector-style fetch
            // schedule is not possible).
            unsigned count = KernelBuilder::wideCount(n.imm);
            unsigned stride = KernelBuilder::wideStride(n.imm);
            uint8_t base = n.kind == NodeKind::InWide ? inAddr()
                                                      : scratchAddr();
            uint8_t addr = allocTemp();
            emitOp2(Op::Add, addr, base, regOf(n.src[0]), true);
            auto &regs = wideRegs[i];
            regs.resize(count);
            for (unsigned w = 0; w < count; ++w) {
                regs[w] = allocTemp();
                emitMem(Op::Ld, regs[w], addr, 0xff, Word(w) * stride,
                        isa::MemSpace::Smc);
            }
            freeTemp(addr);
            wideOwner[i] = true;
            return;
          }
          case NodeKind::WordOf: {
            const Node &w = k.nodes[n.src[0]];
            (void)w;
            define(i, wideRegs.at(n.src[0]).at(static_cast<size_t>(n.imm)),
                   false);
            return;
          }
          case NodeKind::OutWord:
            emitMem(Op::St, 0, outAddr(), regOf(n.src[0]), n.imm,
                    isa::MemSpace::Smc);
            return;
          case NodeKind::OutWordAt: {
            uint8_t addr = allocTemp();
            emitOp2(Op::Add, addr, outAddr(), regOf(n.src[0]), true);
            emitMem(Op::St, 0, addr, regOf(n.src[1]), 0,
                    isa::MemSpace::Smc);
            freeTemp(addr);
            return;
          }
          case NodeKind::ScratchLoad: {
            uint8_t addr = allocTemp();
            emitOp2(Op::Add, addr, scratchAddr(), regOf(n.src[0]), true);
            uint8_t rd = allocTemp();
            emitMem(Op::Ld, rd, addr, 0xff, 0, isa::MemSpace::Smc);
            freeTemp(addr);
            define(i, rd, true);
            return;
          }
          case NodeKind::ScratchStore: {
            uint8_t addr = allocTemp();
            emitOp2(Op::Add, addr, scratchAddr(), regOf(n.src[0]), true);
            emitMem(Op::St, 0, addr, regOf(n.src[1]), 0,
                    isa::MemSpace::Smc);
            freeTemp(addr);
            return;
          }
          case NodeKind::CachedLoad: {
            uint8_t rd = allocTemp();
            emitMem(Op::Ld, rd, regOf(n.src[0]), 0xff, 0,
                    isa::MemSpace::Cached);
            define(i, rd, true);
            return;
          }
          case NodeKind::CachedStore:
            emitMem(Op::St, 0, regOf(n.src[0]), regOf(n.src[1]), 0,
                    isa::MemSpace::Cached);
            return;
          case NodeKind::TableLoad: {
            const auto &table = k.tables[static_cast<size_t>(n.imm)];
            uint8_t masked = allocTemp();
            emitOpImm(Op::And, masked, regOf(n.src[0]),
                      table.data.size() - 1, true);
            uint8_t rd = allocTemp();
            SeqInst si;
            si.op = Op::Tld;
            si.rd = rd;
            si.rs[0] = masked;
            si.space = isa::MemSpace::Table;
            si.tableId = static_cast<uint16_t>(n.imm);
            si.overhead = true;
            code().push_back(si);
            freeTemp(masked);
            define(i, rd, true);
            return;
          }
          case NodeKind::Carry:
            // Register assigned at loop entry.
            return;
          case NodeKind::LoopExit: {
            const Node &cn = k.nodes[n.src[0]];
            define(i, carryRegs.at(static_cast<uint32_t>(cn.imm)), false);
            return;
          }
        }
    }

    void
    emitMem(Op op, uint8_t rd, uint8_t addrReg, uint8_t dataReg, Word imm,
            isa::MemSpace space)
    {
        SeqInst si;
        si.op = op;
        si.rd = rd;
        si.rs[0] = addrReg;
        if (op == Op::St)
            si.rs[1] = dataReg;
        si.imm = imm;
        si.space = space;
        si.overhead = true;
        code().push_back(si);
    }

    // ----------------------------------------------------------------------

    const Kernel &k;
    const core::MachineParams &m;
    StreamLayout layout;
    MimdPlan plan;

    static constexpr unsigned workingPool = 40;

    std::vector<LoopExtent> extents;
    std::vector<size_t> lastUse;
    std::vector<uint8_t> constReg;
    std::map<uint32_t, uint8_t> nodeReg;
    std::map<uint32_t, uint8_t> owned;
    std::map<uint32_t, std::vector<uint8_t>> wideRegs;
    std::map<uint32_t, bool> wideOwner;
    std::map<uint32_t, uint8_t> carryRegs;
    std::map<LoopId, uint8_t> loopIdxReg;
    std::vector<uint8_t> freeRegs;
    unsigned nextFixed = 3;

    uint8_t inAddrReg = 0xff;
    uint8_t outAddrReg = 0xff;
    uint8_t scratchAddrReg = 0xff;
};

} // namespace

MimdPlan
lowerMimd(const kernels::Kernel &k, const core::MachineParams &m,
          const StreamLayout &layout)
{
    Linearizer lin(k, m, layout);
    return lin.lower();
}

} // namespace dlp::sched
