/**
 * @file
 * Ablation A3: network hop latency and L0 data-store sensitivity.
 *
 * (a) Hop delay: the paper's 10FO4 clock makes a hop half a cycle;
 *     slower networks hurt the dataflow configurations most.
 * (b) L0 store latency: the gap between S-O and S-O-D on the
 *     table-driven crypto kernels is exactly the L0 mechanism's value.
 */

#include <iostream>

#include "analysis/report.hh"
#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

using namespace dlp;
using namespace dlp::analysis;

namespace {

double
run(const core::MachineParams &m, const char *kernel)
{
    auto wl = kernels::makeWorkload(kernel,
                                    kernels::defaultScale(kernel) / 4, 99);
    arch::TripsProcessor cpu(m);
    auto res = cpu.run(*wl);
    fatal_if(!res.verified, "%s failed: %s", kernel, res.error.c_str());
    return res.opsPerCycle();
}

} // namespace

int
main()
{
    setQuietLogging(true);

    std::cout << "Ablation: mesh hop delay (config S-O)\n\n";
    TextTable hop;
    hop.header({"hop (ticks)", "convert", "fft", "vertex-simple"});
    for (unsigned h : {1u, 2u, 4u}) {
        core::MachineParams m = arch::configByName("S-O");
        m.hopTicks = h;
        hop.row({std::to_string(h), fmt(run(m, "convert")),
                 fmt(run(m, "fft")), fmt(run(m, "vertex-simple"))});
    }
    hop.print(std::cout);

    std::cout << "\nAblation: indexed-constant mechanism on the crypto "
                 "kernels\n\n";
    TextTable l0;
    l0.header({"Machine", "blowfish ops/cyc", "rijndael ops/cyc"});
    {
        core::MachineParams so = arch::configByName("S-O");
        l0.row({"S-O (tables in L1)", fmt(run(so, "blowfish")),
                fmt(run(so, "rijndael"))});
        core::MachineParams sod = arch::configByName("S-O-D");
        l0.row({"S-O-D (L0, 1 cycle)", fmt(run(sod, "blowfish")),
                fmt(run(sod, "rijndael"))});
        core::MachineParams slow = sod;
        slow.l0Latency = 4;
        l0.row({"S-O-D (L0, 4 cycles)", fmt(run(slow, "blowfish")),
                fmt(run(slow, "rijndael"))});
        core::MachineParams md = arch::configByName("M-D");
        l0.row({"M-D (local PCs + L0)", fmt(run(md, "blowfish")),
                fmt(run(md, "rijndael"))});
    }
    l0.print(std::cout);
    return 0;
}
