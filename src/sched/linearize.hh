/**
 * @file
 * Lowering of kernels onto the MIMD (local-PC) machine.
 *
 * Every tile runs the same sequential program out of its L0 instruction
 * store: a record loop striding by the tile count, with the kernel's
 * loops compiled to real backward branches. Data-dependent trip counts
 * therefore execute only the iterations they need -- the mechanism the
 * paper credits for vertex-skinning's M-D win -- and the whole kernel
 * needs only one copy of its instructions per tile instead of an
 * unrolled copy per concurrent record ("these programs require far less
 * instruction storage and hence can be unrolled more aggressively",
 * Section 5.3).
 */

#ifndef DLP_SCHED_LINEARIZE_HH
#define DLP_SCHED_LINEARIZE_HH

#include "core/machine.hh"
#include "kernels/ir.hh"
#include "sched/plan.hh"

namespace dlp::sched {

/** Compile a kernel to the per-tile MIMD program. */
MimdPlan lowerMimd(const kernels::Kernel &k, const core::MachineParams &m,
                   const StreamLayout &layout);

} // namespace dlp::sched

#endif // DLP_SCHED_LINEARIZE_HH
