/**
 * @file
 * Reference DSP/multimedia models: RGB->YIQ color conversion, the 8x8
 * 2-D discrete cosine transform, and a 3x3 high-pass filter.
 *
 * dct1d8() is the Chen-style factorized 8-point DCT-II the simulated
 * kernel mirrors operation-for-operation; dct8x8Naive() is the O(N^4)
 * cosine-sum definition used to validate the factorization.
 */

#ifndef DLP_REF_DSP_HH
#define DLP_REF_DSP_HH

#include <array>

namespace dlp::ref {

/** NTSC RGB -> YIQ conversion matrix, row-major. */
const std::array<double, 9> &yiqMatrix();

/** Convert one RGB pixel to YIQ. */
void rgbToYiq(const double rgb[3], double yiq[3]);

/**
 * Unnormalized 8-point DCT-II: X[k] = sum_n x[n] cos((2n+1) k pi / 16),
 * computed with the Chen butterfly factorization (7 cosine constants).
 */
void dct1d8(const double in[8], double out[8]);

/** The seven cosine constants c_k = cos(k pi / 16), k = 1..7. */
const std::array<double, 8> &dctCosines();

/** 2-D 8x8 DCT: dct1d8 over columns, then over rows (row-major blocks). */
void dct8x8(const double in[64], double out[64]);

/** Direct-definition 2-D DCT for validation. */
void dct8x8Naive(const double in[64], double out[64]);

/**
 * 3x3 high-pass filter: out = sum_ij k[ij] * window[ij] with the classic
 * sharpening kernel (8 center, -1 neighbours) scaled by 1/9.
 */
double highpass3x3(const double window[9]);

/** The nine filter coefficients. */
const std::array<double, 9> &highpassKernel();

} // namespace dlp::ref

#endif // DLP_REF_DSP_HH
