/**
 * @file
 * The software-managed cache (SMC): reconfigured L2 banks with DMA
 * engines, per-row streaming channels and a coalescing store buffer
 * (Section 4.2, Figure 4a).
 *
 * Functional storage is one flat word-addressed scratchpad shared by all
 * banks; timing is charged against the bank of the *accessing row*. This
 * reflects the paper's assumption that the compiler lays data out so each
 * row streams from its own bank ("the array based design provides a
 * natural partitioning of the cache banks to rows of ALUs") while keeping
 * functional correctness independent of placement.
 */

#ifndef DLP_MEM_SMC_HH
#define DLP_MEM_SMC_HH

#include <cinttypes>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "mem/main_memory.hh"
#include "mem/params.hh"
#include "sim/resource.hh"

namespace dlp::mem {

class SmcSubsystem
{
  public:
    explicit SmcSubsystem(const MemParams &params);

    /** Total words of SMC across all banks. */
    uint64_t capacityWords() const { return storage.size(); }

    // --- Functional backdoor (workload setup / result checking) --------
    Word
    peek(Addr wordAddr) const
    {
        panic_if(wordAddr >= storage.size(),
                 "SMC peek past capacity (%" PRIu64 " >= %zu)", wordAddr,
                 storage.size());
        return storage[wordAddr];
    }

    void
    poke(Addr wordAddr, Word value)
    {
        panic_if(wordAddr >= storage.size(),
                 "SMC poke past capacity (%" PRIu64 " >= %zu)", wordAddr,
                 storage.size());
        storage[wordAddr] = value;
    }

    // --- Timing + functional accesses -----------------------------------
    /**
     * Read nwords contiguous words starting at wordAddr through row's
     * bank and streaming channel.
     *
     * @param out  receives the words (may be null for timing-only).
     * @return the tick the last word arrives at the row edge.
     */
    Tick read(unsigned row, Addr wordAddr, unsigned nwords, Tick start,
              Word *out, unsigned stride = 1);

    /**
     * Write one word through the row's coalescing store buffer.
     * @return the tick the store buffer accepts the word (the block may
     *         commit then; draining to the bank is the buffer's problem).
     */
    Tick write(unsigned row, Addr wordAddr, Word value, Tick start);

    /**
     * Program the row's DMA engine to move nwords between main memory
     * and the bank (direction does not change the timing). Occupies both
     * the bank port and main-memory bandwidth.
     * @return completion tick.
     */
    Tick dmaTransfer(unsigned row, unsigned nwords, Tick start,
                     MainMemory &mainMem);

    uint64_t reads() const { return nReads; }
    uint64_t writes() const { return nWrites; }
    uint64_t wordsRead() const { return nWordsRead; }

    /** Latest bank-port grant end (occupancy reference point). */
    Tick lastBankActivity() const { return lastActivity; }

    /**
     * Advance the raw access counters by a replayed epoch's worth of
     * traffic without simulating it (epoch fast-forwarding). The
     * activity watermark moves by `lastAdvance` ticks; bank/channel
     * calendars are shifted separately through their Resources.
     */
    void
    fastForward(uint64_t readsDelta, uint64_t writesDelta,
                uint64_t wordsDelta, Tick lastAdvance)
    {
        nReads += readsDelta;
        nWrites += writesDelta;
        nWordsRead += wordsDelta;
        lastActivity += lastAdvance;
    }

    /**
     * The SMC statistics group ("mem.smc"): a per-row bank-conflict
     * counter vector, read-burst and row-streaming-occupancy
     * distributions, and derived bandwidth formulas.
     */
    StatGroup &statsGroup() { return statGroup; }

    /** Port resources, exposed for occupancy accounting. */
    std::vector<sim::Resource> &bankPortResources() { return bankPorts; }
    std::vector<sim::Resource> &storeBufResources()
    {
        return storeBufPorts;
    }
    std::vector<sim::Resource> &channelResources() { return chanLanes; }

    /**
     * One lane of the row's dedicated streaming channel (Section 4.2:
     * "dedicated channels are provided from the SMC banks to a
     * corresponding row of ALUs"). Two word lanes per row give the
     * 4-words-per-cycle stream bandwidth; delivery latency to a column
     * is added by the caller.
     */
    sim::Resource &
    channelLane(unsigned row, unsigned lane)
    {
        return chanLanes.at(row * 2 + (lane & 1));
    }

    void resetTiming();

  private:
    const char *dlpTraceName() const { return "smc"; }

    /** Register statistics and the pre-dump occupancy refresh. */
    void initStats();

    sim::Resource &
    bankPort(unsigned row)
    {
        panic_if(row >= bankPorts.size(), "bad SMC row %u", row);
        return bankPorts[row];
    }

    std::vector<Word> storage;
    Tick bankLatency;
    unsigned wordsPerTick;     ///< bank/channel bandwidth in words per tick
    std::vector<sim::Resource> bankPorts;
    std::vector<sim::Resource> storeBufPorts;
    std::vector<sim::Resource> chanLanes; ///< 2 word lanes per row

    uint64_t nReads = 0;
    uint64_t nWrites = 0;
    uint64_t nWordsRead = 0;
    Tick lastActivity = 0; ///< latest bank-port grant end

    StatGroup statGroup{"mem.smc"};
    VectorStat *bankConflicts = nullptr; ///< per-row waited accesses
    Distribution *burstDist = nullptr;   ///< words per stream read
};

} // namespace dlp::mem

#endif // DLP_MEM_SMC_HH
