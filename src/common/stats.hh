/**
 * @file
 * A tiny statistics package in the spirit of gem5's Stats.
 *
 * Components register named scalar counters and distributions with a
 * StatGroup. The experiment runner dumps all groups after a simulation and
 * the benchmark harness pulls individual values to build the paper's
 * tables. Stats are plain doubles; the goal is uniform naming and dumping,
 * not fancy formulas.
 */

#ifndef DLP_COMMON_STATS_HH
#define DLP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace dlp {

/** A named scalar counter. */
class Stat
{
  public:
    Stat() = default;
    explicit Stat(std::string statName) : name(std::move(statName)) {}

    Stat &operator++() { value += 1.0; return *this; }
    Stat &operator+=(double v) { value += v; return *this; }
    void set(double v) { value = v; }
    void reset() { value = 0.0; }

    double get() const { return value; }
    const std::string &statName() const { return name; }

  private:
    std::string name;
    double value = 0.0;
};

/**
 * A group of related statistics with a hierarchical name prefix
 * (e.g. "core.tile3_4" or "mem.smc0").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string groupName) : name(std::move(groupName)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create (or fetch) a counter under this group. */
    Stat &
    scalar(const std::string &statName)
    {
        auto it = stats.find(statName);
        if (it == stats.end())
            it = stats.emplace(statName, Stat(statName)).first;
        return it->second;
    }

    /** Look up a counter; panics if absent (tests use this). */
    const Stat &
    lookup(const std::string &statName) const
    {
        auto it = stats.find(statName);
        panic_if(it == stats.end(), "unknown stat %s.%s", name.c_str(),
                 statName.c_str());
        return it->second;
    }

    bool has(const std::string &statName) const
    {
        return stats.count(statName) != 0;
    }

    /** Zero every counter in the group. */
    void
    resetAll()
    {
        for (auto &kv : stats)
            kv.second.reset();
    }

    /** Pretty-print all counters, one per line, prefixed with the group. */
    void dump(std::ostream &os) const;

    const std::string &groupName() const { return name; }
    const std::map<std::string, Stat> &all() const { return stats; }

  private:
    std::string name;
    std::map<std::string, Stat> stats;
};

} // namespace dlp

#endif // DLP_COMMON_STATS_HH
