#include "noc/mesh.hh"

namespace dlp::noc {

MeshNetwork::MeshNetwork(unsigned nrows, unsigned ncols, Tick hop)
    : rows(nrows), cols(ncols), hopTicks(hop),
      east(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      west(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      south(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      north(static_cast<size_t>(nrows) * ncols, sim::Resource(1)),
      edgeOut(nrows, sim::Resource(1)),
      edgeIn(nrows, sim::Resource(1))
{
    panic_if(rows == 0 || cols == 0, "degenerate mesh %ux%u", rows, cols);
}

sim::Resource &
MeshNetwork::linkFor(Coord at, int drow, int dcol)
{
    size_t idx = static_cast<size_t>(at.row) * cols + at.col;
    if (dcol > 0)
        return east[idx];
    if (dcol < 0)
        return west[idx];
    if (drow > 0)
        return south[idx];
    return north[idx];
}

Tick
MeshNetwork::traverseLink(Coord at, int drow, int dcol, Tick ready)
{
    sim::Resource &link = linkFor(at, drow, dcol);
    Tick grant = link.acquire(ready);
    contention += grant - ready;
    ++hops;
    return grant + hopTicks;
}

Tick
MeshNetwork::route(Coord src, Coord dst, Tick inject)
{
    panic_if(src.row >= rows || src.col >= cols, "route from off-grid");
    panic_if(dst.row >= rows || dst.col >= cols, "route to off-grid");
    ++routed;

    // Local bypass: the ALU result feeds its own reservation stations for
    // free on the same tick.
    if (src == dst)
        return inject;

    Tick t = inject;
    Coord cur = src;
    // X first ...
    while (cur.col != dst.col) {
        int dcol = cur.col < dst.col ? 1 : -1;
        t = traverseLink(cur, 0, dcol, t);
        cur.col = static_cast<uint8_t>(cur.col + dcol);
    }
    // ... then Y.
    while (cur.row != dst.row) {
        int drow = cur.row < dst.row ? 1 : -1;
        t = traverseLink(cur, drow, 0, t);
        cur.row = static_cast<uint8_t>(cur.row + drow);
    }
    return t;
}

Tick
MeshNetwork::routeToEdge(Coord src, Tick inject)
{
    panic_if(src.row >= rows || src.col >= cols, "edge route from off-grid");
    ++routed;

    Tick t = inject;
    Coord cur = src;
    while (cur.col != 0) {
        t = traverseLink(cur, 0, -1, t);
        cur.col--;
    }
    // Cross from column 0 into the row's memory port.
    Tick grant = edgeOut[src.row].acquire(t);
    contention += grant - t;
    ++hops;
    return grant + hopTicks;
}

Tick
MeshNetwork::routeFromEdge(unsigned row, Coord dst, Tick inject)
{
    panic_if(row >= rows, "edge route from bad row %u", row);
    panic_if(dst.row >= rows || dst.col >= cols, "edge route to off-grid");
    ++routed;

    // Cross from the memory port into column 0 of the row.
    Tick grant = edgeIn[row].acquire(inject);
    contention += grant - inject;
    ++hops;
    Tick t = grant + hopTicks;

    Coord cur{static_cast<uint8_t>(row), 0};
    while (cur.col != dst.col) {
        t = traverseLink(cur, 0, 1, t);
        cur.col++;
    }
    while (cur.row != dst.row) {
        int drow = cur.row < dst.row ? 1 : -1;
        t = traverseLink(cur, drow, 0, t);
        cur.row = static_cast<uint8_t>(cur.row + drow);
    }
    return t;
}

void
MeshNetwork::reset()
{
    for (auto *set : {&east, &west, &south, &north, &edgeOut, &edgeIn})
        for (auto &link : *set)
            link.reset();
    routed = 0;
    hops = 0;
    contention = 0;
}

} // namespace dlp::noc
