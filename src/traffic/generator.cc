#include "traffic/generator.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/random.hh"

namespace dlp::traffic {

Arrival
arrivalByName(const std::string &name)
{
    if (name == "uniform")
        return Arrival::Uniform;
    if (name == "poisson")
        return Arrival::Poisson;
    fatal("unknown arrival discipline '%s' (uniform, poisson)",
          name.c_str());
}

const char *
arrivalName(Arrival a)
{
    return a == Arrival::Uniform ? "uniform" : "poisson";
}

std::vector<MixEntry>
parseMix(const std::string &spec)
{
    std::vector<MixEntry> mix;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma > start) {
            std::string tok = spec.substr(start, comma - start);
            size_t colon = tok.find(':');
            MixEntry e;
            if (colon == std::string::npos) {
                e.kernel = tok;
            } else {
                e.kernel = tok.substr(0, colon);
                e.weight = std::strtoull(tok.c_str() + colon + 1,
                                         nullptr, 10);
            }
            fatal_if(e.kernel.empty() || e.weight == 0,
                     "bad mix entry '%s' (want kernel[:weight], weight "
                     "nonzero)", tok.c_str());
            mix.push_back(std::move(e));
        }
        start = comma + 1;
    }
    fatal_if(mix.empty(), "empty kernel mix '%s'", spec.c_str());
    return mix;
}

double
detLog(double x)
{
    // ln(x) = e*ln2 + ln(m) with x = m * 2^e, m in [0.5, 1). Fold one
    // exponent step so m lands in [sqrt(0.5), sqrt(2)), where the atanh
    // series argument s = (m-1)/(m+1) satisfies |s| <= 0.1716 and a
    // 15th-order truncation is accurate to ~1e-14 relative.
    int e = 0;
    double m = std::frexp(x, &e);
    if (m < 0.70710678118654752440) {
        m *= 2.0;
        e -= 1;
    }
    double s = (m - 1.0) / (m + 1.0);
    double s2 = s * s;
    double series = 1.0 / 15.0;
    series = series * s2 + 1.0 / 13.0;
    series = series * s2 + 1.0 / 11.0;
    series = series * s2 + 1.0 / 9.0;
    series = series * s2 + 1.0 / 7.0;
    series = series * s2 + 1.0 / 5.0;
    series = series * s2 + 1.0 / 3.0;
    series = series * s2 + 1.0;
    constexpr double ln2 = 0.69314718055994530942;
    return double(e) * ln2 + 2.0 * s * series;
}

std::vector<Request>
generate(const TrafficParams &p)
{
    fatal_if(p.mix.empty(), "traffic: empty kernel mix");
    fatal_if(p.rps <= 0.0, "traffic: rps must be positive");
    fatal_if(p.ticksPerSec <= 0.0, "traffic: ticksPerSec must be positive");
    fatal_if(p.seedPool == 0, "traffic: seedPool must be nonzero");

    uint64_t totalWeight = 0;
    for (const auto &e : p.mix) {
        fatal_if(e.weight == 0, "traffic: zero weight for kernel %s",
                 e.kernel.c_str());
        totalWeight += e.weight;
    }

    double meanGap = p.ticksPerSec / p.rps;
    fatal_if(meanGap >= 9e18, "traffic: rps too low for the tick clock");

    Rng rng(p.seed * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull);
    std::vector<Request> schedule;
    schedule.reserve(p.requests);
    Tick now = 0;
    for (uint64_t i = 0; i < p.requests; ++i) {
        double gap;
        if (p.arrival == Arrival::Uniform) {
            // mean +/- 50% jitter, uniform.
            gap = meanGap * (0.5 + rng.uniform());
        } else {
            // Exponential via inversion; clamp U away from 0 so the
            // tail stays finite.
            double u = rng.uniform();
            if (u < 1e-12)
                u = 1e-12;
            gap = meanGap * -detLog(u);
        }
        Tick gapTicks = Tick(gap) + 1;  // at least one tick apart
        now += gapTicks;

        Request r;
        r.index = i;
        r.arrival = now;
        uint64_t draw = rng.below(totalWeight);
        uint32_t mixIndex = 0;
        for (const auto &e : p.mix) {
            if (draw < e.weight)
                break;
            draw -= e.weight;
            ++mixIndex;
        }
        r.mixIndex = mixIndex;
        r.seedSlot = uint32_t(rng.below(p.seedPool));
        schedule.push_back(r);
    }
    return schedule;
}

} // namespace dlp::traffic
