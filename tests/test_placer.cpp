/**
 * @file
 * Direct unit tests of the static placer: capacity, edge affinity of
 * memory operations, register-tile placement and row spreading of
 * independent kernel instances.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "kernels/catalog.hh"
#include "sched/placer.hh"
#include "sched/simd_lowering.hh"

using namespace dlp;
using namespace dlp::sched;
using isa::MappedBlock;
using isa::MappedInst;
using isa::Op;

namespace {

MappedBlock
emptyBlock(const core::MachineParams &m)
{
    MappedBlock b;
    b.name = "unit";
    b.rows = static_cast<uint8_t>(m.rows);
    b.cols = static_cast<uint8_t>(m.cols);
    b.slotsPerTile = static_cast<uint8_t>(m.frameSlots);
    return b;
}

MappedInst
mk(Op op)
{
    MappedInst mi;
    mi.op = op;
    mi.numSrcs = isa::opInfo(op).numSrcs;
    return mi;
}

} // namespace

TEST(Placer, FillsToCapacityWithoutOverflow)
{
    auto m = arch::configByName("S");
    auto b = emptyBlock(m);
    for (unsigned i = 0; i < m.totalSlots(); ++i)
        b.insts.push_back(mk(Op::Movi));
    placeBlock(b, m);
    b.validate(); // panics on any overfilled tile
}

TEST(Placer, OverCapacityPanics)
{
    auto m = arch::configByName("S");
    auto b = emptyBlock(m);
    for (unsigned i = 0; i < m.totalSlots() + 1; ++i)
        b.insts.push_back(mk(Op::Movi));
    EXPECT_THROW(placeBlock(b, m), PanicError);
}

TEST(Placer, MemoryOpsHugTheWestEdge)
{
    auto m = arch::configByName("S");
    auto b = emptyBlock(m);
    std::vector<unsigned> hints;
    for (unsigned i = 0; i < 16; ++i) {
        auto ld = mk(Op::Ld);
        ld.space = isa::MemSpace::Smc;
        b.insts.push_back(ld);
        hints.push_back(i);
    }
    placeBlock(b, m, hints);
    for (const auto &mi : b.insts)
        EXPECT_LE(mi.col, 1) << "load placed far from the edge";
}

TEST(Placer, InstancesSpreadAcrossRows)
{
    auto m = arch::configByName("S");
    auto b = emptyBlock(m);
    std::vector<unsigned> hints;
    for (unsigned inst = 0; inst < 8; ++inst) {
        auto ld = mk(Op::Ld);
        ld.space = isa::MemSpace::Smc;
        b.insts.push_back(ld);
        hints.push_back(inst);
    }
    placeBlock(b, m, hints);
    std::set<unsigned> rows;
    for (const auto &mi : b.insts)
        rows.insert(mi.row);
    EXPECT_EQ(rows.size(), 8u); // one per row
}

TEST(Placer, RegisterTilesOnNorthEdge)
{
    auto m = arch::configByName("S");
    auto b = emptyBlock(m);
    for (unsigned r = 0; r < 8; ++r) {
        auto rd = mk(Op::Read);
        rd.imm = r;
        rd.regTile = true;
        b.insts.push_back(rd);
    }
    placeBlock(b, m);
    for (const auto &mi : b.insts)
        EXPECT_EQ(mi.row, 0u);
}

TEST(Placer, ConsumersLandNearProducers)
{
    auto m = arch::configByName("S");
    auto b = emptyBlock(m);
    auto producer = mk(Op::Movi);
    producer.targets.push_back(isa::Target{1, 0, 0});
    auto consumer = mk(Op::Mov);
    b.insts.push_back(producer);
    b.insts.push_back(consumer);
    placeBlock(b, m, {3, 3});
    unsigned dist =
        std::abs(int(b.insts[0].row) - int(b.insts[1].row)) +
        std::abs(int(b.insts[0].col) - int(b.insts[1].col));
    EXPECT_LE(dist, 2u);
}

TEST(Placer, NoSharedStationsAcrossTheCatalog)
{
    // Every placed block of every kernel x SIMD-configuration pair:
    // no two instructions may occupy the same reservation station
    // (row, col, slot); register-tile Read/Write are slot-exempt.
    for (const char *configName : {"baseline", "S", "S-O", "S-O-D"}) {
        core::MachineParams m = arch::configByName(configName);
        for (const auto &k : kernels::allKernels()) {
            uint64_t chunkRecords = 0;
            sched::StreamLayout layout =
                arch::makeStreamLayout(k, m, chunkRecords);
            sched::SimdPlan plan = sched::lowerSimd(k, m, layout);
            for (const auto &seg : plan.segments) {
                std::set<std::tuple<unsigned, unsigned, unsigned>> used;
                for (const auto &mi : seg.block.insts) {
                    if (mi.regTile)
                        continue;
                    EXPECT_TRUE(used.insert(
                        {mi.row, mi.col, mi.slot}).second)
                        << k.name << " on " << configName << ", block "
                        << seg.block.name << ": station ("
                        << int(mi.row) << "," << int(mi.col) << ":"
                        << int(mi.slot) << ") used twice";
                }
            }
        }
    }
}
