file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_interp.dir/test_kernels_interp.cpp.o"
  "CMakeFiles/test_kernels_interp.dir/test_kernels_interp.cpp.o.d"
  "test_kernels_interp"
  "test_kernels_interp.pdb"
  "test_kernels_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
