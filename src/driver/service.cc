#include "driver/service.hh"

#include "arch/configs.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "driver/sweep.hh"
#include "verify/audit.hh"

namespace dlp::driver {

namespace {

const GroupSnapshot *
findGroup(const arch::ExperimentResult &res, const std::string &name)
{
    for (const auto &g : res.statGroups)
        if (g.name == name)
            return &g;
    return nullptr;
}

double
scalarOr(const GroupSnapshot *g, const std::string &name)
{
    if (!g)
        return 0.0;
    auto it = g->scalars.find(name);
    return it == g->scalars.end() ? 0.0 : it->second;
}

} // namespace

arch::RequestProfile
profileFromResult(const arch::ExperimentResult &res,
                  const std::string &config, uint64_t scale, uint64_t seed)
{
    arch::RequestProfile p;
    p.kernel = res.kernel;
    p.scale = scale;
    p.seed = seed;
    p.activations = res.activations;
    p.usefulOps = res.usefulOps;
    p.isolatedTicks = double(cyclesToTicks(res.cycles));
    fatal_if(p.isolatedTicks <= 0.0,
             "profile run %s/%s simulated zero cycles", res.kernel.c_str(),
             res.config.c_str());

    // Shared-structure words the request moves: SMC stream traffic
    // (reads in words, plus one word per write) and hardware-cache L1
    // miss line fills out of the same physical L2 banks. Configurations
    // without an SMC simply contribute their cache-side traffic.
    const GroupSnapshot *smc = findGroup(res, "mem.smc");
    const GroupSnapshot *sys = findGroup(res, "mem.sys");
    double lineWords =
        double(arch::configByName(config).memParams.lineBytes) /
        double(wordBytes);
    double sharedWords = scalarOr(smc, "wordsRead") +
                         scalarOr(smc, "writes") +
                         scalarOr(sys, "l1Misses") * lineWords;
    p.demandWordsPerTick = sharedWords / p.isolatedTicks;
    return p;
}

arch::ServiceResult
runService(const ServiceOptions &opts)
{
    const traffic::TrafficParams &t = opts.traffic;
    fatal_if(t.mix.empty(), "service: empty kernel mix");
    fatal_if(opts.cores == 0, "service: need at least one core");

    // One profile run per (mix kernel x dataset-seed slot), through the
    // ordinary sweep: parallel across jobs, cached, stored — and
    // bit-identical to standalone single-core runs of the same cells.
    SweepPlan plan;
    for (const auto &e : t.mix)
        for (uint64_t s = 0; s < t.seedPool; ++s)
            plan.tasks.push_back({e.kernel, opts.config, 1,
                                  slotSeed(t, uint32_t(s)), t.batch});

    SweepOptions sweep;
    sweep.jobs = opts.jobs;
    sweep.useCache = opts.useCache;
    sweep.storeDir = opts.storeDir;
    std::vector<arch::ExperimentResult> profiled = runSweep(plan, sweep);

    std::vector<arch::RequestProfile> profiles;
    profiles.reserve(profiled.size());
    for (size_t i = 0; i < profiled.size(); ++i)
        profiles.push_back(profileFromResult(profiled[i], opts.config,
                                             t.batch,
                                             plan.tasks[i].seed));

    arch::SystemParams sp;
    sp.cores = opts.cores;
    sp.bandwidthWordsPerTick = opts.bandwidthWordsPerTick;
    sp.ticksPerSec = t.ticksPerSec;
    sp.timeseriesInterval = opts.timeseriesInterval;

    arch::MultiCoreSystem system(sp, std::move(profiles), t.seedPool);
    arch::ServiceResult res = system.serve(traffic::generate(t));

    res.config = opts.config;
    res.offeredRps = t.rps;
    res.arrival = traffic::arrivalName(t.arrival);
    res.batch = t.batch;
    res.seed = t.seed;

    if (verify::auditEnabled())
        verify::auditAndRecordService(res);
    return res;
}

} // namespace dlp::driver
