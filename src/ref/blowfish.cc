#include "ref/blowfish.hh"

#include "common/logging.hh"
#include "ref/pi_digits.hh"

namespace dlp::ref {

namespace {

/** The pi-derived initial P-array and S-boxes, computed once. */
struct InitBoxes
{
    std::array<uint32_t, 18> p;
    std::array<std::array<uint32_t, 256>, 4> s;
};

const InitBoxes &
initBoxes()
{
    static const InitBoxes boxes = [] {
        InitBoxes b;
        auto words = piFractionWords(18 + 4 * 256);
        size_t w = 0;
        for (auto &pi : b.p)
            pi = words[w++];
        for (auto &box : b.s)
            for (auto &e : box)
                e = words[w++];
        return b;
    }();
    return boxes;
}

} // namespace

Blowfish::Blowfish(const uint8_t *key, size_t keyLen)
{
    panic_if(keyLen == 0 || keyLen > 56, "blowfish key length %zu", keyLen);

    const InitBoxes &init = initBoxes();
    p = init.p;
    s = init.s;

    // XOR the key cyclically into the P-array.
    size_t k = 0;
    for (auto &pi : p) {
        uint32_t data = 0;
        for (int i = 0; i < 4; ++i) {
            data = (data << 8) | key[k];
            k = (k + 1) % keyLen;
        }
        pi ^= data;
    }

    // Replace P and S entries with successive encryptions of zero.
    uint32_t l = 0, r = 0;
    for (size_t i = 0; i < p.size(); i += 2) {
        encrypt(l, r);
        p[i] = l;
        p[i + 1] = r;
    }
    for (auto &box : s) {
        for (size_t i = 0; i < box.size(); i += 2) {
            encrypt(l, r);
            box[i] = l;
            box[i + 1] = r;
        }
    }
}

uint32_t
Blowfish::feistel(uint32_t x) const
{
    uint32_t a = (x >> 24) & 0xff;
    uint32_t b = (x >> 16) & 0xff;
    uint32_t c = (x >> 8) & 0xff;
    uint32_t d = x & 0xff;
    return ((s[0][a] + s[1][b]) ^ s[2][c]) + s[3][d];
}

void
Blowfish::encrypt(uint32_t &left, uint32_t &right) const
{
    uint32_t l = left, r = right;
    for (int i = 0; i < 16; ++i) {
        l ^= p[i];
        r ^= feistel(l);
        std::swap(l, r);
    }
    std::swap(l, r);
    r ^= p[16];
    l ^= p[17];
    left = l;
    right = r;
}

void
Blowfish::decrypt(uint32_t &left, uint32_t &right) const
{
    uint32_t l = left, r = right;
    for (int i = 17; i > 1; --i) {
        l ^= p[i];
        r ^= feistel(l);
        std::swap(l, r);
    }
    std::swap(l, r);
    r ^= p[1];
    l ^= p[0];
    left = l;
    right = r;
}

} // namespace dlp::ref
