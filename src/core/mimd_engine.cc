#include "core/mimd_engine.hh"

#include <algorithm>
#include <cinttypes>
#include <queue>

#include "common/bitutils.hh"
#include "common/trace.hh"
#include "isa/disasm.hh"

namespace dlp::core {

using isa::MemSpace;
using isa::Op;
using isa::SeqInst;

MimdEngine::MimdEngine(const MachineParams &params,
                       mem::MemorySystem &memory)
    : m(params), mem(memory),
      mesh(params.rows, params.cols, params.hopTicks),
      l0Ports(params.tiles(), sim::Resource(ticksPerCycle))
{
    // Each MIMD tile issues at most one instruction per cycle.
    issueWidth = &engStats.distribution("issueWidth", 0.0, 1.0, 20);
    operandWait = &engStats.distribution("operandWaitTicks", 0.0, 128.0,
                                         16);
}

void
MimdEngine::setTables(const std::vector<kernels::Table> *kernelTables)
{
    tables = kernelTables;
    tableByteBase.clear();
    Addr base = tableRegionBase;
    if (tables) {
        for (const auto &t : *tables) {
            tableByteBase.push_back(base);
            base += t.data.size() * wordBytes;
        }
    }
}

RunStats
MimdEngine::run(const sched::MimdPlan &plan, uint64_t numRecords)
{
    RunStats stats;
    Tick start = curTick;

    // Setup block (Section 4.3): broadcast the program into every L0
    // instruction store, preload the per-tile registers and the L0 data
    // stores, reset the PCs.
    uint64_t setupWords = plan.program.code.size();
    if (tables && m.mech.l0DataStore) {
        for (const auto &t : *tables)
            setupWords += t.data.size();
    }
    start += cyclesToTicks(
        divCeil(std::max<uint64_t>(setupWords, 1),
                m.memParams.smcWordsPerCycle) +
        m.mapOverhead);
    stats.mappings = 1;

    std::vector<TileState> tiles(m.tiles());
    for (unsigned t = 0; t < m.tiles(); ++t) {
        TileState &ts = tiles[t];
        ts.here = noc::Coord{static_cast<uint8_t>(t / m.cols),
                             static_cast<uint8_t>(t % m.cols)};
        ts.regs.assign(m.tileRegs, 0);
        ts.ready.assign(m.tileRegs, start);
        for (const auto &init : plan.initialRegs)
            ts.regs.at(init.first) = init.second;
        ts.regs.at(plan.recIdxReg) = t;
        ts.regs.at(plan.strideReg) = m.tiles();
        ts.regs.at(plan.recCountReg) = numRecords;
        ts.cursor = start;
        ts.lastEffect = start;
    }

    // Advance tiles one instruction at a time in global simulated-time
    // order, so contention for shared resources (edge ports, banks,
    // links) resolves first-come-first-served in machine time rather
    // than in tile-scan order.
    using HeapEntry = std::pair<Tick, unsigned>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    for (unsigned t = 0; t < m.tiles(); ++t)
        heap.emplace(start, t);

    Tick end = start;
    Tick hiTick = start; ///< high-water mark for monotonic sampling
    while (!heap.empty()) {
        auto [when, tileIdx] = heap.top();
        heap.pop();
        (void)when;
        TileState &ts = tiles[tileIdx];
        if (ts.pc >= plan.program.code.size())
            continue;

        // If this tile is dependency-stalled past the next tile's turn,
        // give way and come back at the stall-resolution time.
        Tick t = issueTime(plan, ts);
        if (!heap.empty() && t > heap.top().first) {
            heap.emplace(t, tileIdx);
            continue;
        }

        step(plan, ts, stats);
        hiTick = std::max(hiTick, ts.cursor);
        if (sampler)
            sampler->maybeSample(hiTick);

        if (ts.pc >= plan.program.code.size()) {
            Tick tileEnd = std::max(ts.cursor, ts.lastEffect);
            for (Tick o : ts.outstanding)
                tileEnd = std::max(tileEnd, o);
            end = std::max(end, tileEnd);
            DPRINTF(Engine, "tile %u finished at %" PRIu64, tileIdx,
                    tileEnd);
        } else {
            heap.emplace(ts.cursor, tileIdx);
        }
    }

    // Sustained per-tile issue width for this run segment.
    Cycles span = ticksToCycles(end - start) + 1;
    for (const auto &ts : tiles)
        issueWidth->sample(double(ts.executed) / double(span));
    engStats.scalar("instsExecuted") += double(stats.instsExecuted);

    OBS_SIM_SPAN(Engine, "mimd.setup", curTick, start - curTick,
                 setupWords);
    OBS_SIM_SPAN(Engine, "mimd.run", start, end - start,
                 stats.instsExecuted);

    stats.cycles = ticksToCycles(end - curTick);
    curTick = end;
    return stats;
}

Tick
MimdEngine::issueTime(const sched::MimdPlan &plan, const TileState &ts) const
{
    const SeqInst &si = plan.program.code[ts.pc];
    const auto &info = isa::opInfo(si.op);
    Tick t = ts.cursor;
    for (unsigned s = 0; s < info.numSrcs; ++s) {
        if (s == 1 && si.immB)
            continue;
        t = std::max(t, ts.ready[si.rs[s]]);
    }
    return t;
}

void
MimdEngine::step(const sched::MimdPlan &plan, TileState &ts,
                 RunStats &stats)
{
    const auto &code = plan.program.code;
    const SeqInst &si = code[ts.pc];
    const auto &info = isa::opInfo(si.op);
    unsigned tile = ts.here.row * m.cols + ts.here.col;
    unsigned row = ts.here.row;

    fatal_if(++ts.executed > instLimit,
             "MIMD tile %u exceeded the instruction limit "
             "(runaway loop in %s?)",
             tile, plan.name.c_str());
    ++hostSteps;

    Tick t = issueTime(plan, ts);
    trace::setCurTick(t);
    if (t > ts.cursor)
        operandWait->sample(double(t - ts.cursor));
    ++stats.instsExecuted;
    if (!si.overhead)
        ++stats.usefulOps;
    DPRINTF(Exec, "tile %u pc=%" PRIu64 " %s", tile, ts.pc,
            isa::disasm(si).c_str());
    OBS_SIM_INSTANT(Exec, "step", t, (uint64_t(tile) << 32) | ts.pc);

    Word a = ts.regs[si.rs[0]];
    Word b = si.immB ? si.imm : ts.regs[si.rs[1]];

    switch (si.op) {
      case Op::Ld: {
        while (ts.outstanding.size() >= m.mimdOutstandingLoads) {
            t = std::max(t, ts.outstanding.front());
            ts.outstanding.pop_front();
        }
        Addr addr = a + si.imm;
        Word value = 0;
        Tick atEdge = mesh.routeToEdge(ts.here, t + ticksPerCycle);
        Tick done;
        if (si.space == MemSpace::Smc && m.mech.smc) {
            Tick served = mem.streamRead(row, addr, 1, atEdge, &value);
            // The response rides the row's streaming channel.
            Tick grant = mem.smc().channelLane(row, 0).acquire(served);
            done = grant + 1 + ts.here.col * m.hopTicks;
        } else if (si.space == MemSpace::Smc) {
            Tick served = mem.streamRead(row, addr, 1, atEdge, &value);
            done = mesh.routeFromEdge(row, ts.here, served);
        } else {
            Tick served = mem.cachedRead(row, addr, atEdge, value);
            done = mesh.routeFromEdge(row, ts.here, served);
        }
        ts.regs[si.rd] = value;
        ts.ready[si.rd] = done;
        ts.outstanding.push_back(done);
        ts.lastEffect = std::max(ts.lastEffect, done);
        break;
      }
      case Op::St: {
        Addr addr = a + si.imm;
        Tick atEdge = mesh.routeToEdge(ts.here, t + ticksPerCycle);
        Tick done;
        if (si.space == MemSpace::Smc)
            done = mem.streamWrite(row, addr, ts.regs[si.rs[1]], atEdge);
        else
            done = mem.cachedWrite(row, addr, ts.regs[si.rs[1]], atEdge);
        ts.lastEffect = std::max(ts.lastEffect, done);
        break;
      }
      case Op::Tld: {
        panic_if(!tables || si.tableId >= tables->size(),
                 "Tld without table %u", si.tableId);
        const auto &table = (*tables)[si.tableId].data;
        Word value = table[a & (table.size() - 1)];
        Tick done;
        if (m.mech.l0DataStore) {
            Tick grant = l0Ports[tile].acquire(t);
            done = grant + cyclesToTicks(m.l0Latency);
        } else {
            // No L0 store: the table lives in cached memory.
            while (ts.outstanding.size() >= m.mimdOutstandingLoads) {
                t = std::max(t, ts.outstanding.front());
                ts.outstanding.pop_front();
            }
            Tick atEdge = mesh.routeToEdge(ts.here, t + ticksPerCycle);
            Addr byteAddr = tableByteBase[si.tableId] + a * wordBytes;
            Tick served = mem.cachedTiming(row, byteAddr, atEdge, false);
            done = mesh.routeFromEdge(row, ts.here, served);
            ts.outstanding.push_back(done);
        }
        ts.regs[si.rd] = value;
        ts.ready[si.rd] = done;
        ts.lastEffect = std::max(ts.lastEffect, done);
        break;
      }
      case Op::Br:
        ts.cursor = t + ticksPerCycle;
        ts.pc = si.branchTarget;
        return;
      case Op::Beqz:
      case Op::Bnez: {
        bool taken = (si.op == Op::Beqz) ? (a == 0) : (a != 0);
        ts.cursor = t + ticksPerCycle;
        ts.pc = taken ? si.branchTarget : ts.pc + 1;
        return;
      }
      case Op::Halt:
        ts.cursor = t + ticksPerCycle;
        ts.pc = code.size();
        return;
      default: {
        Word c = ts.regs[si.rs[2]];
        ts.regs[si.rd] = isa::evalOp(si.op, a, b, c, si.imm);
        ts.ready[si.rd] = t + cyclesToTicks(info.latency);
        break;
      }
    }

    ts.cursor = t + ticksPerCycle; // one issue per cycle
    ++ts.pc;
}

} // namespace dlp::core
