#include "epoch/epoch.hh"

#include <atomic>
#include <cstdlib>
#include <string>

namespace dlp::epoch {

namespace {

/// -1 = follow the environment, 0/1 = forced off/on.
std::atomic<int> ffOverride{-1};

std::atomic<uint64_t> iterationCap{0};

bool
envFastForward()
{
    // On unless explicitly disabled: DLP_FASTFORWARD=0 turns it off,
    // anything else (including unset) leaves it on.
    const char *env = std::getenv("DLP_FASTFORWARD");
    return !env || std::string(env) != "0";
}

} // namespace

bool
fastForwardEnabled()
{
    int forced = ffOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool fromEnv = envFastForward();
    return fromEnv;
}

void
setFastForwardEnabled(bool on)
{
    ffOverride.store(on ? 1 : 0, std::memory_order_relaxed);
}

uint64_t
armStreak()
{
    return 4;
}

uint64_t
maxIterationsPerEpoch()
{
    return iterationCap.load(std::memory_order_relaxed);
}

void
setMaxIterationsPerEpoch(uint64_t iterations)
{
    iterationCap.store(iterations, std::memory_order_relaxed);
}

} // namespace dlp::epoch
