/**
 * @file
 * A small-buffer-only callable: the allocation-free replacement for
 * std::function<void()> on the event hot path.
 *
 * An InlineFn stores its callable *inline* -- there is no heap
 * fallback. A capture that does not fit (or is not trivially copyable)
 * is a compile error at the bind site, which is exactly the guarantee
 * the event kernel needs: zero heap allocations per scheduled event,
 * enforced by construction rather than by measurement.
 *
 * The trivially-copyable requirement makes InlineFn itself trivially
 * copyable, so event nodes holding one can live by value in bucket
 * vectors and the overflow heap and be relocated with memcpy. Engine
 * callbacks capture a `this` pointer plus a few words of payload, all
 * of which qualify.
 */

#ifndef DLP_SIM_INLINE_FN_HH
#define DLP_SIM_INLINE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dlp::sim {

template <std::size_t Capacity>
class InlineFnT
{
  public:
    InlineFnT() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFnT>>>
    InlineFnT(F &&f) // NOLINT: implicit by design (lambda -> InlineFn)
    {
        bind(std::forward<F>(f));
    }

    /** (Re)bind to a callable; the old binding is discarded. */
    template <typename F>
    void
    bind(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "capture too large for InlineFn -- shrink the "
                      "capture (capture members via this) rather than "
                      "falling back to the heap");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned capture in InlineFn");
        static_assert(std::is_trivially_copyable_v<Fn>,
                      "InlineFn captures must be trivially copyable "
                      "(pointers, references, integers)");
        static_assert(std::is_trivially_destructible_v<Fn>,
                      "InlineFn captures must be trivially destructible");
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
        call = [](void *p) { (*static_cast<Fn *>(p))(); };
    }

    void operator()() { call(buf); }

    explicit operator bool() const { return call != nullptr; }

  private:
    void (*call)(void *) = nullptr;
    alignas(std::max_align_t) unsigned char buf[Capacity];
};

/**
 * The event-kernel callable. 48 bytes holds a `this` pointer plus four
 * payload words -- comfortably more than the widest engine callback
 * (operand delivery: this + inst index + slot + value + arrival tick).
 */
using InlineFn = InlineFnT<48>;

} // namespace dlp::sim

#endif // DLP_SIM_INLINE_FN_HH
