/**
 * @file
 * Occupancy bookkeeping for contended hardware resources.
 *
 * Router ports, cache-bank ports, register-file ports, ALU issue slots
 * and DMA engines are all "one grant every N ticks" resources. Each
 * resource keeps a calendar of busy intervals: a request is granted the
 * first idle window of the required length at or after its ready time.
 * Unlike a simple next-free-tick watermark, the calendar serves requests
 * that arrive out of simulation order correctly -- a late-simulated but
 * early-in-machine-time request can claim an idle window before a
 * previously granted later one, which is what a real FCFS queue would
 * have done.
 *
 * Adjacent intervals are merged, so densely used resources keep O(1)
 * state and acquisition stays O(log n) amortized.
 */

#ifndef DLP_SIM_RESOURCE_HH
#define DLP_SIM_RESOURCE_HH

#include <algorithm>
#include <map>

#include "common/stats.hh"
#include "common/types.hh"

namespace dlp::sim {

/** A single-server FCFS resource with a fixed service interval. */
class Resource
{
  public:
    /**
     * @param interval Ticks between successive grants (service time).
     */
    explicit Resource(Tick interval = 1) : serviceInterval(interval) {}

    /**
     * Acquire the resource no earlier than earliest.
     * @return The tick at which the grant happens.
     */
    Tick
    acquire(Tick earliest)
    {
        return acquireMany(earliest, 1);
    }

    /**
     * Acquire the resource for a burst of units back-to-back service
     * intervals (e.g. a wide load occupying a bank port for several
     * ticks). @return the tick of the first grant.
     */
    Tick
    acquireMany(Tick earliest, uint64_t units)
    {
        if (units == 0)
            return earliest;
        Tick len = serviceInterval * units;
        Tick grant = findWindow(earliest, len);
        insertBusy(grant, grant + len);
        totalGrants += units;
        totalWait += grant - earliest;
        lastEnd = std::max(lastEnd, grant + len);
        return grant;
    }

    /** Would a request at tick earliest be granted without waiting? */
    bool
    idleAt(Tick earliest) const
    {
        return findWindowConst(earliest, serviceInterval) == earliest;
    }

    /** End of the last scheduled busy interval. */
    Tick nextFree() const { return lastEnd; }

    Tick interval() const { return serviceInterval; }
    void setInterval(Tick t) { serviceInterval = t; }

    uint64_t grants() const { return totalGrants; }
    Tick waitedTicks() const { return totalWait; }

    void
    reset()
    {
        busy.clear();
        lastEnd = 0;
        totalGrants = 0;
        totalWait = 0;
    }

  private:
    /** First start >= earliest of an idle window of length len. */
    Tick
    findWindowConst(Tick earliest, Tick len) const
    {
        Tick t = earliest;
        auto it = busy.upper_bound(t);
        if (it != busy.begin()) {
            auto prev = std::prev(it);
            if (prev->second > t)
                t = prev->second;
        }
        while (it != busy.end() && it->first < t + len) {
            t = std::max(t, it->second);
            ++it;
        }
        return t;
    }

    Tick
    findWindow(Tick earliest, Tick len)
    {
        return findWindowConst(earliest, len);
    }

    /** Insert [start, end), merging with adjacent intervals. */
    void
    insertBusy(Tick start, Tick end)
    {
        // Merge with a predecessor that touches us.
        auto it = busy.lower_bound(start);
        if (it != busy.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= start) {
                start = prev->first;
                end = std::max(end, prev->second);
                it = busy.erase(prev);
            }
        }
        // Merge any successors we touch.
        while (it != busy.end() && it->first <= end) {
            end = std::max(end, it->second);
            it = busy.erase(it);
        }
        busy.emplace(start, end);
    }

    Tick serviceInterval;
    std::map<Tick, Tick> busy; ///< start -> end, disjoint, merged
    Tick lastEnd = 0;
    uint64_t totalGrants = 0;
    Tick totalWait = 0;
};

} // namespace dlp::sim

#endif // DLP_SIM_RESOURCE_HH
