/**
 * @file
 * Multi-core scale-out top level: N grid cores behind a shared L2/SMC.
 *
 * A MultiCoreSystem serves an open-loop request schedule (see
 * src/traffic/generator.hh) on N TRIPS grid cores. Each core runs one
 * request at a time; the request's core-level execution is *not*
 * re-simulated here — it is characterized once per distinct
 * (kernel, seed-slot) pair by the existing single-core simulation
 * (driver::runService does that through the ordinary sweep machinery,
 * so per-core behavior is bit-identical to the single-core grid and
 * benefits from the result cache and store). The system level then
 * composes those per-request profiles with a fluid shared-bandwidth
 * contention model (mem/shared_smc.hh): between system events the
 * active set is constant, every active core is stretched by the same
 * factor f = max(1, sum(demand)/B), and the event loop advances from
 * arrival to completion exactly — a strictly serial, reproducible
 * queueing simulation on top of exact core-level profiles.
 *
 * Requests are dispatched to the lowest-numbered idle core; when all
 * cores are busy they wait in a single FIFO queue (the open-loop
 * generator keeps injecting, so overload shows up as queue growth and
 * tail latency, not as throttled offered load). Per-request latency
 * (completion - arrival) lands in a Distribution plus a raw vector for
 * exact nearest-rank percentiles; queue depth and injection/completion
 * flows are sampled into an obs::TimeSeries; shared-memory contention
 * is the arbiter's "mem.shared" group.
 */

#ifndef DLP_ARCH_MULTICORE_HH
#define DLP_ARCH_MULTICORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/processor.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/sampler.hh"
#include "traffic/generator.hh"

namespace dlp::arch {

/**
 * The core-level characterization of one distinct request class
 * (kernel drawn from the mix x dataset-seed slot): what the request
 * does to a core in isolation. Produced by driver::runService from an
 * ordinary single-core ExperimentResult.
 */
struct RequestProfile
{
    std::string kernel;
    uint64_t scale = 0;  ///< records per request (the traffic batch)
    uint64_t seed = 0;   ///< concrete dataset seed of this slot

    double isolatedTicks = 0.0;  ///< service time alone on a core
    /** Shared L2/SMC structure words per tick the request moves when
     *  running alone: SMC stream reads + writes + L1 miss line fills. */
    double demandWordsPerTick = 0.0;

    uint64_t activations = 0;  ///< engine activations of one request
    uint64_t usefulOps = 0;
};

/** System-level knobs of the multi-core composition. */
struct SystemParams
{
    unsigned cores = 1;
    /**
     * Aggregate shared L2/SMC bandwidth in words per tick. 0 derives
     * the default from MemParams: one core's worth of SMC banks,
     * rows * smcWordsPerCycle words per cycle — so a single core can
     * just saturate the shared pool and every added core contends.
     */
    double bandwidthWordsPerTick = 0.0;
    double ticksPerSec = 1e9;      ///< converts ticks to wall seconds
    uint64_t timeseriesInterval = 0;  ///< queue-depth sampling, 0 = off
};

/** What happened to one request of the schedule. */
struct RequestRecord
{
    uint64_t index = 0;     ///< injection order
    uint32_t mixIndex = 0;  ///< kernel mix entry it drew
    uint32_t seedSlot = 0;  ///< dataset slot it drew
    unsigned core = 0;      ///< core that served it
    double arrival = 0.0;   ///< ticks
    double start = 0.0;     ///< dispatch tick (>= arrival)
    double finish = 0.0;    ///< completion tick

    double latency() const { return finish - arrival; }
    double queueWait() const { return start - arrival; }
};

/** Per-core accounting of one service run. */
struct CoreServiceStats
{
    uint64_t requests = 0;     ///< requests this core completed
    double busyTicks = 0.0;    ///< stretched (wall) ticks serving them
    double workTicks = 0.0;    ///< isolated-equivalent ticks of work
    uint64_t activations = 0;  ///< summed profile activations
};

/** Outcome of serving one traffic schedule on a multi-core system. */
struct ServiceResult
{
    std::string config;  ///< machine configuration of every core
    unsigned cores = 0;
    double bandwidthWordsPerTick = 0.0;
    double offeredRps = 0.0;  ///< the generator's target load
    std::string arrival;      ///< arrival discipline name
    uint64_t batch = 0;
    uint64_t seed = 0;
    uint64_t seedPool = 0;
    double ticksPerSec = 0.0;

    /// @name Conservation totals (the service auditor's subject).
    /// @{
    uint64_t injected = 0;
    uint64_t completed = 0;
    uint64_t inFlightAtDrain = 0;  ///< 0 after a full drain
    uint64_t systemActivations = 0;  ///< summed over completed requests
    /// @}

    double drainTick = 0.0;  ///< makespan: last completion tick
    /** Completions per wall second over the makespan. */
    double sustainedRps = 0.0;

    /// @name Latency, in ticks. Percentiles are exact nearest-rank over
    /// the raw per-request latencies (p50 <= p95 <= p99 by construction).
    /// @{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double meanLatency = 0.0;
    double maxLatency = 0.0;
    Distribution latency;  ///< histogram of the same samples
    /// @}

    double meanQueueWait = 0.0;  ///< ticks from arrival to dispatch
    double maxQueueDepth = 0.0;  ///< peak waiting requests

    std::vector<RequestRecord> requests;  ///< injection order
    std::vector<CoreServiceStats> perCore;
    std::vector<RequestProfile> profiles;  ///< mixIndex-major x seedSlot

    /** "sys.mc" and "mem.shared" group snapshots (contention counters). */
    std::vector<GroupSnapshot> statGroups;

    /** Queue depth / flow samples (empty unless sampling configured). */
    obs::TimeSeries timeseries;

    /// @name Post-run service audit (verify::auditAndRecordService).
    /// @{
    bool audited = false;
    std::vector<AuditFinding> auditViolations;
    /// @}

    const GroupSnapshot &
    group(const std::string &name) const
    {
        for (const auto &g : statGroups)
            if (g.name == name)
                return g;
        panic("no stat group '%s' in service result (%s, %u cores)",
              name.c_str(), config.c_str(), cores);
    }
};

/**
 * The system-level composition. Construct with the per-request-class
 * profiles (indexed mixIndex * seedPool + seedSlot, matching the
 * schedule's draws), then serve() a schedule to completion.
 */
class MultiCoreSystem
{
  public:
    MultiCoreSystem(const SystemParams &params,
                    std::vector<RequestProfile> profiles,
                    uint64_t seedPool);

    /**
     * Serve every request of the schedule to completion (full drain)
     * and return the aggregated result. Strictly serial and
     * deterministic: same schedule + profiles + params => bit-identical
     * result.
     */
    ServiceResult serve(const std::vector<traffic::Request> &schedule);

    /** The default shared bandwidth a params struct resolves to. */
    static double defaultBandwidth();

  private:
    SystemParams p;
    std::vector<RequestProfile> profiles;
    uint64_t seedPool;
};

/** Exact nearest-rank percentile of an ascending-sorted sample vector. */
double nearestRank(const std::vector<double> &sorted, double pct);

} // namespace dlp::arch

#endif // DLP_ARCH_MULTICORE_HH
