/**
 * @file
 * Reference Rijndael / AES-128 (FIPS-197).
 *
 * Exposes both a byte-oriented encryption (the specification form used
 * for validation) and the 32-bit T-table formulation -- four 256-entry
 * tables, the paper's 1024-entry "indexed constants" for this kernel --
 * which is the form the simulated kernel implements.
 */

#ifndef DLP_REF_RIJNDAEL_HH
#define DLP_REF_RIJNDAEL_HH

#include <array>
#include <cstdint>

namespace dlp::ref {

/** The AES S-box, computed algebraically (GF(2^8) inverse + affine). */
const std::array<uint8_t, 256> &aesSbox();

/**
 * The four encryption T-tables:
 * T0[x] = (2*S[x], S[x], S[x], 3*S[x]) as a big-endian packed word and
 * T1..T3 its byte rotations.
 */
const std::array<std::array<uint32_t, 256>, 4> &aesTTables();

class Aes128
{
  public:
    /** Expand a 16-byte key into 11 round keys. */
    explicit Aes128(const uint8_t key[16]);

    /** Encrypt one 16-byte block (specification form). */
    void encrypt(const uint8_t in[16], uint8_t out[16]) const;

    /** Encrypt using the T-table formulation (must match encrypt()). */
    void encryptTTable(const uint8_t in[16], uint8_t out[16]) const;

    /** Round keys as 44 big-endian words. */
    const std::array<uint32_t, 44> &roundKeys() const { return rk; }

  private:
    std::array<uint32_t, 44> rk;
};

} // namespace dlp::ref

#endif // DLP_REF_RIJNDAEL_HH
