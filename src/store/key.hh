/**
 * @file
 * Content-addressed experiment keys.
 *
 * An experiment is fully determined by (kernel IR, machine
 * configuration, problem scale, dataset seed, code version): the
 * simulator is deterministic and CI asserts bit-identical results
 * across processes and worker counts, which is exactly what makes a
 * content-addressed cache sound. The key is the 128-bit FNV-1a digest
 * (as 32 hex characters) of a canonical serialization of those five
 * inputs:
 *
 *  - the kernel's complete IR — every node, loop, carry, constant and
 *    table, field by field — so an edited kernel changes its key even
 *    if its name stays the same;
 *  - every MachineParams field (mechanism switches, array geometry,
 *    latencies, the full memory-system parameter block), so a tweaked
 *    configuration never aliases the old one;
 *  - the resolved problem scale and dataset seed;
 *  - a code-version string: DLP_CODE_VERSION if set, else a
 *    compile-time stamp. A rebuilt binary therefore defaults to a cold
 *    store — set DLP_CODE_VERSION explicitly (e.g. to a git SHA) to
 *    share a store across builds known to be result-compatible.
 *
 * The same key string is used by the in-process result cache, the
 * on-disk store and the sweepd in-flight dedup table, so "same cell"
 * means the same thing at every layer.
 */

#ifndef DLP_STORE_KEY_HH
#define DLP_STORE_KEY_HH

#include <cstdint>
#include <string>

#include "common/hash.hh"
#include "core/machine.hh"
#include "kernels/ir.hh"
#include "traffic/generator.hh"

namespace dlp::store {

/**
 * Bumped whenever the canonical fold below changes shape, or when the
 * simulator's result schema changes incompatibly (v2: epoch
 * fast-forwarding counters joined the stored ExperimentResult; v3:
 * multi-core service documents joined the store and serviceKey()'s
 * canonical fold was defined).
 */
constexpr uint64_t keyFormatVersion = 3;

/** Fold a kernel's complete IR into a hasher, canonically. */
void foldKernel(Fnv1a128 &h, const kernels::Kernel &k);

/** Fold every machine parameter into a hasher, canonically. */
void foldMachine(Fnv1a128 &h, const core::MachineParams &m);

/** Digest of one kernel's IR (cached per catalog name; thread-safe). */
Hash128 kernelIrHash(const std::string &kernelName);

/** Digest of one Table 5 configuration (cached per name; thread-safe). */
Hash128 machineHash(const std::string &configName);

/**
 * The code-version string folded into every key: DLP_CODE_VERSION from
 * the environment if non-empty, else the library's compile-time stamp.
 */
std::string codeVersion();

/** Override the code version (tests; empty string restores default). */
void setCodeVersion(const std::string &version);

/**
 * The content-addressed key of one experiment cell, as 32 hex chars.
 * scale is the *resolved* problem scale (driver::resolvedScale), not a
 * divisor.
 */
std::string experimentKey(const std::string &kernel,
                          const std::string &config, uint64_t scale,
                          uint64_t seed);

/**
 * The content-addressed key of one multi-core service run, as 32 hex
 * chars: machine-config digest, core count, shared bandwidth, the
 * complete traffic description (arrival process, load, request count,
 * batch, seeds, and the IR digest plus weight of every mix entry) and
 * the code version. The same determinism argument as experimentKey():
 * the service simulation is bit-reproducible from exactly these inputs.
 */
std::string serviceKey(const std::string &config, unsigned cores,
                       double bandwidthWordsPerTick,
                       const traffic::TrafficParams &t);

} // namespace dlp::store

#endif // DLP_STORE_KEY_HH
