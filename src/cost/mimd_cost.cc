/**
 * @file
 * MIMD (sequential-program) side of the static cost model.
 *
 * MimdEngine issues one instruction per cycle per tile, strides the
 * record loop across all tiles, and serializes every SMC access of a
 * row's tiles through that row's bank and store-buffer ports. The
 * sound per-record floor is therefore a min-weight cycle over the
 * program's control-flow graph, taken independently for three weight
 * functions: instruction count (the per-tile serial floor), bank-port
 * ticks and store-buffer ticks (the per-row memory floors).
 */

#include "cost/cost.hh"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "common/bitutils.hh"
#include "isa/opcodes.hh"
#include "isa/seq.hh"

namespace dlp::cost {

namespace {

using isa::Op;
using isa::SeqInst;
using isa::SeqProgram;

std::vector<std::vector<uint32_t>>
successors(const SeqProgram &prog)
{
    size_t n = prog.code.size();
    std::vector<std::vector<uint32_t>> succ(n);
    for (size_t i = 0; i < n; ++i) {
        const SeqInst &si = prog.code[i];
        switch (si.op) {
          case Op::Br:
            if (si.branchTarget < n)
                succ[i].push_back(si.branchTarget);
            break;
          case Op::Beqz:
          case Op::Bnez:
            if (si.branchTarget < n)
                succ[i].push_back(si.branchTarget);
            if (i + 1 < n)
                succ[i].push_back(uint32_t(i + 1));
            break;
          case Op::Halt:
            break;
          default:
            if (i + 1 < n)
                succ[i].push_back(uint32_t(i + 1));
            break;
        }
    }
    return succ;
}

/**
 * Minimum weight of any directed cycle, where a cycle's weight is the
 * sum of its nodes' weights. Zero when the program has no cycle (a
 * straight-line program contributes no per-iteration floor). Programs
 * are tiny (tens of instructions), so Dijkstra from every node is
 * cheap.
 */
uint64_t
minCycleWeight(const std::vector<std::vector<uint32_t>> &succ,
               const std::vector<uint64_t> &weight)
{
    size_t n = succ.size();
    constexpr uint64_t inf = std::numeric_limits<uint64_t>::max();
    uint64_t best = inf;

    for (uint32_t v = 0; v < n; ++v) {
        // Shortest weight-sum path from each successor of v back to v,
        // counting every node entered along the way; closing the cycle
        // adds v's own weight.
        std::vector<uint64_t> dist(n, inf);
        using Entry = std::pair<uint64_t, uint32_t>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
        for (uint32_t s : succ[v]) {
            if (s == v) { // self-loop
                best = std::min(best, weight[v]);
                continue;
            }
            if (weight[s] < dist[s]) {
                dist[s] = weight[s];
                pq.emplace(dist[s], s);
            }
        }
        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d != dist[u])
                continue;
            if (d + weight[v] >= best)
                break; // cannot improve the global minimum from here
            for (uint32_t x : succ[u]) {
                if (x == v) {
                    best = std::min(best, d + weight[v]);
                    continue;
                }
                uint64_t nd = d + weight[x];
                if (nd < dist[x]) {
                    dist[x] = nd;
                    pq.emplace(nd, x);
                }
            }
        }
    }
    return best == inf ? 0 : best;
}

/** SMC bank-port busy ticks for a one-word access. */
uint64_t
scalarBurstTicks(const core::MachineParams &m)
{
    unsigned wordsPerTick = m.memParams.smcWordsPerCycle / ticksPerCycle;
    if (wordsPerTick == 0)
        wordsPerTick = 1;
    constexpr unsigned lineWords = 4;
    return divCeil(lineWords, wordsPerTick);
}

/** Dynamic per-record operation counts from the abstract walk. */
struct DynCounts
{
    bool converged = false; ///< the walk reached Halt within budget
    uint64_t insts = 0;
    uint64_t smcLoads = 0;
    uint64_t smcStores = 0;
    uint64_t cachedAccesses = 0;
    uint64_t tlds = 0;
    uint64_t ticks = 0; ///< uncontended serial ticks for the iteration
};

/**
 * Constant-folding abstract walk of one record iteration, with the
 * engine's in-order issue timing run alongside (uncontended).
 *
 * The linearizer seeds every loop counter from immediates and tests the
 * record loop at the bottom, so a walk that folds all-known-operand ops
 * with isa::evalOp and falls through every unknown-condition branch
 * executes static inner loops to their exact trip counts while passing
 * through each data-dependent loop (and the record loop itself) exactly
 * once: the forward pre-check falls *into* the body and the backward
 * back-edge falls *out*. The result is the dynamic instruction and
 * memory-operation count of one record's worth of work -- the quantity
 * the throughput estimate needs, which the static per-CFG-cycle counts
 * (sound, but innermost-cycle-only) badly underestimate for kernels
 * with counted inner loops.
 *
 * The timing shadow mirrors MimdEngine::step without contention: one
 * issue per cycle, issue waits on the sources' ready times, ALU results
 * ready after the op latency, loads after the row round trip with at
 * most mimdOutstandingLoads in flight. Dependence stalls -- which
 * dominate compute-heavy kernels and which an insts-times-issue-width
 * model misses entirely -- thus land in `ticks` exactly.
 */
DynCounts
walkOneRecord(const sched::MimdPlan &plan, const core::MachineParams &m)
{
    const auto &code = plan.program.code;
    size_t n = code.size();
    std::vector<Word> val(256, 0);
    std::vector<bool> known(256, false);
    for (const auto &[reg, value] : plan.initialRegs) {
        val.at(reg) = value;
        known.at(reg) = true;
    }
    // The stride is the machine's tile count; the record index (per
    // tile) and record count (per run) are not knowable statically.
    val.at(plan.strideReg) = m.tiles();
    known.at(plan.strideReg) = true;
    known.at(plan.recIdxReg) = false;
    known.at(plan.recCountReg) = false;

    // Uncontended latencies for a middle-of-the-row tile.
    uint64_t burst = scalarBurstTicks(m);
    uint64_t halfRowHops = uint64_t(m.cols / 2) * m.hopTicks;
    uint64_t smcLat = ticksPerCycle + halfRowHops + 1 + burst +
                      cyclesToTicks(m.memParams.smcLatency) + 1 +
                      halfRowHops;
    uint64_t cachedLat = ticksPerCycle + halfRowHops + 1 +
                         cyclesToTicks(m.memParams.l1HitLatency) + 1 +
                         halfRowHops;
    // Cached-space loads are irregular by construction (MemSpace::
    // Cached is the textures-and-pointers space): data-dependent
    // addresses spread over a footprint the line-grained caches hold
    // poorly, so assume they miss through to main memory. Table-space
    // lookups are the opposite extreme -- a few KB of hot indexed
    // constants that stay L1-resident -- so they pay the hit path.
    uint64_t irregularLat = ticksPerCycle + halfRowHops +
                            cyclesToTicks(m.memParams.l1HitLatency) +
                            cyclesToTicks(m.memParams.l2Latency) +
                            cyclesToTicks(m.memParams.memLatency) +
                            halfRowHops;
    size_t maxOutstanding = std::max(1u, m.mimdOutstandingLoads);

    uint64_t cursor = 0;
    std::vector<uint64_t> ready(256, 0);
    std::deque<uint64_t> outstanding;

    DynCounts out;
    uint64_t budget = 1u << 20;
    size_t pc = 0;
    while (pc < n && budget) {
        --budget;
        const SeqInst &si = code[pc];
        const auto &info = isa::opInfo(si.op);
        ++out.insts;
        if (si.op == Op::Ld && si.space == isa::MemSpace::Smc)
            ++out.smcLoads;
        if (si.op == Op::St && si.space == isa::MemSpace::Smc)
            ++out.smcStores;
        if ((si.op == Op::Ld || si.op == Op::St) &&
            !(si.space == isa::MemSpace::Smc && m.mech.smc))
            ++out.cachedAccesses;

        uint64_t t = cursor;
        for (unsigned s = 0; s < info.numSrcs; ++s) {
            if (s == 1 && si.immB)
                continue;
            t = std::max(t, ready[si.rs[s]]);
        }

        switch (si.op) {
          case Op::Ld: {
            while (outstanding.size() >= maxOutstanding) {
                t = std::max(t, outstanding.front());
                outstanding.pop_front();
            }
            uint64_t done =
                t + (si.space == isa::MemSpace::Smc      ? smcLat
                     : si.space == isa::MemSpace::Cached ? irregularLat
                                                         : cachedLat);
            ready[si.rd] = done;
            outstanding.push_back(done);
            known[si.rd] = false;
            ++pc;
            break;
          }
          case Op::St:
            ++pc;
            break;
          case Op::Tld:
            ++out.tlds;
            if (m.mech.l0DataStore) {
                ready[si.rd] = t + cyclesToTicks(m.l0Latency);
            } else {
                while (outstanding.size() >= maxOutstanding) {
                    t = std::max(t, outstanding.front());
                    outstanding.pop_front();
                }
                ready[si.rd] = t + cachedLat;
                outstanding.push_back(ready[si.rd]);
            }
            known[si.rd] = false;
            ++pc;
            break;
          case Op::Br:
            pc = si.branchTarget;
            break;
          case Op::Beqz:
          case Op::Bnez:
            if (known[si.rs[0]]) {
                bool taken = (si.op == Op::Beqz) ? (val[si.rs[0]] == 0)
                                                 : (val[si.rs[0]] != 0);
                pc = taken ? si.branchTarget : pc + 1;
            } else {
                // Unknown condition: fall through. Forward pre-checks
                // enter their loop body; backward back-edges exit after
                // one trip.
                ++pc;
            }
            break;
          case Op::Halt:
            pc = n;
            break;
          default: {
            bool foldable = true;
            for (unsigned s = 0; s < info.numSrcs; ++s) {
                if (s == 1 && si.immB)
                    continue;
                if (!known[si.rs[s]])
                    foldable = false;
            }
            Word b = si.immB ? si.imm : val[si.rs[1]];
            if ((si.op == Op::Udiv || si.op == Op::Urem) && b == 0)
                foldable = false;
            if (foldable) {
                val[si.rd] =
                    isa::evalOp(si.op, val[si.rs[0]], b, val[si.rs[2]],
                                si.imm);
                known[si.rd] = true;
            } else {
                known[si.rd] = false;
            }
            ready[si.rd] = t + cyclesToTicks(info.latency);
            ++pc;
            break;
          }
        }
        cursor = t + ticksPerCycle;
    }
    out.converged = pc >= n;
    out.ticks = cursor;
    return out;
}

} // namespace

CostReport
analyzeMimd(const sched::MimdPlan &plan, const core::MachineParams &m,
            uint64_t records, uint64_t batches)
{
    CostReport rep;
    rep.analyzed = true;
    rep.mimd = true;
    rep.plan = plan.name;
    rep.config = m.name;
    rep.tiles = m.tiles();
    rep.gridCols = m.cols;

    // Setup block: broadcast the program (plus the L0 table images) at
    // the SMC streaming width -- mirrors MimdEngine::run.
    uint64_t setupWords = plan.program.code.size();
    // Table preloading depends on the kernel's tables, which the plan
    // does not carry; omitting them only lowers the bound.
    rep.setupTicks = cyclesToTicks(
        divCeil(std::max<uint64_t>(setupWords, 1),
                m.memParams.smcWordsPerCycle) +
        m.mapOverhead);

    size_t n = plan.program.code.size();
    auto succ = successors(plan.program);

    std::vector<uint64_t> wInsts(n, 1);
    std::vector<uint64_t> wLoad(n, 0);
    std::vector<uint64_t> wStore(n, 0);
    uint64_t burst = scalarBurstTicks(m);
    uint64_t smcLoads = 0, smcStores = 0, cachedAccesses = 0, tlds = 0;
    for (size_t i = 0; i < n; ++i) {
        const SeqInst &si = plan.program.code[i];
        if (si.op == Op::Ld && si.space == isa::MemSpace::Smc && m.mech.smc)
            wLoad[i] = burst;
        if (si.op == Op::St && si.space == isa::MemSpace::Smc && m.mech.smc)
            wStore[i] = 1;
        if ((si.op == Op::Ld || si.op == Op::St) &&
            !(si.space == isa::MemSpace::Smc && m.mech.smc))
            ++cachedAccesses;
        if (si.op == Op::Ld && si.space == isa::MemSpace::Smc)
            ++smcLoads;
        if (si.op == Op::St && si.space == isa::MemSpace::Smc)
            ++smcStores;
        if (si.op == Op::Tld)
            ++tlds;
    }
    rep.minCycleInsts = minCycleWeight(succ, wInsts);
    rep.minCycleLoadUnits = minCycleWeight(succ, wLoad);
    rep.minCycleStoreUnits = minCycleWeight(succ, wStore);

    // --- Throughput estimate for ranking (not a bound) -------------------
    // The constant-folding timed walk gives the per-record serial ticks
    // of one tile exactly (dependence stalls, op latencies, and load
    // round trips included), floored by the per-row bank bandwidth the
    // row's tiles share. When the walk fails to converge (a folding gap
    // left a counted loop spinning), fall back to the static
    // whole-program counts at one issue per cycle plus an amortized
    // latency penalty.
    DynCounts dyn = walkOneRecord(plan, m);
    double serial, bankUnits;
    if (dyn.converged) {
        serial = double(dyn.ticks);
        bankUnits = double(dyn.smcLoads * burst + dyn.smcStores);
    } else {
        double iterTicks = double(rep.minCycleInsts) * ticksPerCycle;
        double halfRow = double(m.cols) / 2.0;
        double smcLat =
            ticksPerCycle + halfRow + 1 +
            double(burst + cyclesToTicks(m.memParams.smcLatency)) + 1 +
            halfRow;
        double cachedLat =
            ticksPerCycle + halfRow + 1 +
            double(cyclesToTicks(m.memParams.l1HitLatency)) + 1 + halfRow;
        double outstanding = double(std::max(1u, m.mimdOutstandingLoads));
        double latPenalty =
            double(smcLoads) * smcLat / outstanding +
            double(cachedAccesses) * cachedLat / outstanding;
        if (!m.mech.l0DataStore)
            latPenalty += double(tlds) * cachedLat / outstanding;
        serial = iterTicks + latPenalty;
        bankUnits = double(smcLoads * burst + smcStores);
    }

    // Run shape: each batch (and each SMC chunk within one) broadcasts
    // the program afresh. Records stride across tiles, so a run's time
    // is the slowest tile's serial records floored by its row's shared
    // bank bandwidth; short runs leave most tiles idle and amortize the
    // setup over few records.
    uint64_t chunk = plan.layout.chunkRecords;
    uint64_t nBatches = std::max<uint64_t>(1, batches);
    uint64_t runs, recsPerRun;
    if (records) {
        uint64_t perBatch = divCeil(records, nBatches);
        runs = nBatches * (chunk ? divCeil(perBatch, chunk) : 1);
        recsPerRun = divCeil(records, runs);
    } else {
        runs = 1;
        recsPerRun = chunk ? chunk : uint64_t(1) << 20;
    }
    uint64_t tiles = std::max<uint64_t>(1, rep.tiles);
    uint64_t rows = std::max<uint64_t>(1, tiles / std::max(1u, m.cols));
    uint64_t perTile = divCeil(recsPerRun, tiles);
    uint64_t perRow = divCeil(recsPerRun, rows);
    double perRun =
        double(rep.setupTicks) +
        std::max(double(perTile) * serial, double(perRow) * bankUnits);
    double denom = records ? double(records) : double(recsPerRun);
    rep.predictedTicksPerRecord = double(runs) * perRun / denom;
    return rep;
}

} // namespace dlp::cost
