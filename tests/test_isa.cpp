/**
 * @file
 * Unit tests for the operation set: functional semantics (including the
 * 32-bit variants the crypto kernels depend on), latency-table sanity
 * and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/mapped.hh"
#include "isa/opcodes.hh"

using namespace dlp;
using namespace dlp::isa;

struct OpCase
{
    Op op;
    Word a, b, c, imm;
    Word expect;
};

class EvalOp : public ::testing::TestWithParam<OpCase>
{
};

TEST_P(EvalOp, Matches)
{
    const auto &t = GetParam();
    EXPECT_EQ(evalOp(t.op, t.a, t.b, t.c, t.imm), t.expect)
        << opName(t.op);
}

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, EvalOp,
    ::testing::Values(
        OpCase{Op::Add, 3, 4, 0, 0, 7},
        OpCase{Op::Sub, 3, 4, 0, 0, Word(-1)},
        OpCase{Op::Mul, 6, 7, 0, 0, 42},
        OpCase{Op::And, 0xff00, 0x0ff0, 0, 0, 0x0f00},
        OpCase{Op::Or, 0xf0, 0x0f, 0, 0, 0xff},
        OpCase{Op::Xor, 0xff, 0x0f, 0, 0, 0xf0},
        OpCase{Op::Not, 0, 0, 0, 0, ~Word(0)},
        OpCase{Op::Shl, 1, 12, 0, 0, 4096},
        OpCase{Op::Shr, 4096, 12, 0, 0, 1},
        OpCase{Op::Sar, Word(-8), 2, 0, 0, Word(-2)},
        OpCase{Op::Add32, 0xffffffff, 1, 0, 0, 0},
        OpCase{Op::Sub32, 0, 1, 0, 0, 0xffffffff},
        OpCase{Op::Mul32, 0x10000, 0x10000, 0, 0, 0},
        OpCase{Op::Not32, 0, 0, 0, 0, 0xffffffff},
        OpCase{Op::Shl32, 0x80000000, 1, 0, 0, 0},
        OpCase{Op::Shr32, 0x80000000, 31, 0, 0, 1},
        OpCase{Op::Rotl32, 0x80000001, 1, 0, 0, 3},
        OpCase{Op::Rotr32, 3, 1, 0, 0, 0x80000001},
        OpCase{Op::Eq, 5, 5, 0, 0, 1},
        OpCase{Op::Ne, 5, 5, 0, 0, 0},
        OpCase{Op::Lt, Word(-1), 0, 0, 0, 1},
        OpCase{Op::Ltu, Word(-1), 0, 0, 0, 0},
        OpCase{Op::Leu, 3, 3, 0, 0, 1},
        OpCase{Op::Sel, 10, 20, 1, 0, 10},
        OpCase{Op::Sel, 10, 20, 0, 0, 20},
        OpCase{Op::Movi, 0, 0, 0, 1234, 1234},
        OpCase{Op::Mov, 55, 0, 0, 0, 55}));

TEST(EvalOpFp, Arithmetic)
{
    auto F = fpToWord;
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Fadd, F(1.5), F(2.25), 0, 0)),
                     3.75);
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Fmul, F(3.0), F(-2.0), 0, 0)),
                     -6.0);
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Fdiv, F(1.0), F(4.0), 0, 0)),
                     0.25);
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Fsqrt, F(81.0), 0, 0, 0)), 9.0);
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Fmax, F(-1.0), F(2.0), 0, 0)),
                     2.0);
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Fabs, F(-7.0), 0, 0, 0)), 7.0);
    EXPECT_EQ(evalOp(Op::Flt, F(1.0), F(2.0), 0, 0), 1u);
    EXPECT_DOUBLE_EQ(wordToFp(evalOp(Op::Itof, Word(-3), 0, 0, 0)), -3.0);
    EXPECT_EQ(evalOp(Op::Ftoi, F(3.9), 0, 0, 0), 3u);
}

TEST(EvalOp, DivideByZeroPanics)
{
    EXPECT_THROW(evalOp(Op::Udiv, 1, 0, 0, 0), PanicError);
}

TEST(EvalOp, ControlOpsRejected)
{
    EXPECT_THROW(evalOp(Op::Ld, 0, 0, 0, 0), PanicError);
    EXPECT_THROW(evalOp(Op::Br, 0, 0, 0, 0), PanicError);
}

TEST(OpInfo, LatenciesMatchAlpha21264Style)
{
    EXPECT_EQ(opInfo(Op::Add).latency, 1u);
    EXPECT_EQ(opInfo(Op::Mul).latency, 7u);
    EXPECT_EQ(opInfo(Op::Fadd).latency, 4u);
    EXPECT_EQ(opInfo(Op::Fmul).latency, 4u);
    EXPECT_GE(opInfo(Op::Fdiv).latency, 12u);
    EXPECT_EQ(opInfo(Op::Fdiv).fu, FuClass::FpDiv);
}

TEST(OpInfo, SourceCounts)
{
    EXPECT_EQ(opInfo(Op::Movi).numSrcs, 0u);
    EXPECT_EQ(opInfo(Op::Mov).numSrcs, 1u);
    EXPECT_EQ(opInfo(Op::Add).numSrcs, 2u);
    EXPECT_EQ(opInfo(Op::Sel).numSrcs, 3u);
    EXPECT_EQ(opInfo(Op::St).numSrcs, 2u);
}

TEST(Mapped, ValidateCatchesOffGrid)
{
    MappedBlock b;
    b.name = "bad";
    b.rows = 2;
    b.cols = 2;
    b.slotsPerTile = 1;
    MappedInst mi;
    mi.row = 5;
    b.insts.push_back(mi);
    EXPECT_THROW(b.validate(), PanicError);
}

TEST(Mapped, ValidateCatchesOverfilledTile)
{
    MappedBlock b;
    b.name = "full";
    b.rows = 1;
    b.cols = 1;
    b.slotsPerTile = 1;
    MappedInst a, c;
    a.slot = 0;
    c.slot = 0;
    b.insts.push_back(a);
    b.insts.push_back(c);
    EXPECT_THROW(b.validate(), PanicError);
}

TEST(Disasm, MentionsOpcodeAndTargets)
{
    MappedInst mi;
    mi.op = Op::Add;
    mi.row = 1;
    mi.col = 2;
    mi.targets.push_back(Target{7, 1, 0});
    std::string s = disasm(mi);
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("i7"), std::string::npos);
}

TEST(Disasm, GoldenMappedInstructions)
{
    // Placement, operands, memory attributes, revitalization state and
    // targets all print; these strings are what the trace logs and the
    // static verifier's diagnostics embed.
    MappedInst add;
    add.op = Op::Add;
    add.row = 1;
    add.col = 2;
    add.slot = 5;
    add.numSrcs = 2;
    add.immB = true;
    add.imm = 10;
    add.persistent[1] = true;
    add.targets.push_back(Target{7, 1, 0});
    add.overhead = true;
    EXPECT_EQ(disasm(add), "[1,2:5] add b=#10 ^p1 -> i7.1 ;ovh");

    MappedInst lmw;
    lmw.op = Op::Lmw;
    lmw.numSrcs = 1;
    lmw.space = MemSpace::Smc;
    lmw.lmwCount = 4;
    lmw.lmwStride = 2;
    lmw.targets.push_back(Target{3, 0, 0});
    lmw.targets.push_back(Target{4, 0, 3});
    EXPECT_EQ(disasm(lmw), "[0,0:0] lmw @smc x4*2 -> i3.0 i4.0w3");

    MappedInst rd;
    rd.op = Op::Read;
    rd.imm = 19;
    rd.regTile = true;
    rd.onceOnly = true;
    rd.targets.push_back(Target{1, 0, 0});
    EXPECT_EQ(disasm(rd), "[0,0:0r] read #19 !once -> i1.0");

    MappedInst tld;
    tld.op = Op::Tld;
    tld.numSrcs = 1;
    tld.space = MemSpace::Table;
    tld.tableId = 2;
    EXPECT_EQ(disasm(tld), "[0,0:0] tld @tab t2");
}

TEST(Disasm, GoldenSeqInstruction)
{
    SeqInst si;
    si.op = Op::St;
    si.rs[0] = 3;
    si.rs[1] = 4;
    si.imm = 8;
    si.space = MemSpace::Smc;
    EXPECT_EQ(disasm(si), "st r0, r3, r4, #8 @smc");
}

TEST(Disasm, BlockListingCarriesPlacementPerLine)
{
    MappedBlock b;
    b.name = "demo";
    b.rows = 2;
    b.cols = 2;
    b.slotsPerTile = 2;
    MappedInst mi;
    mi.op = Op::Movi;
    mi.imm = 42;
    mi.row = 1;
    mi.col = 1;
    mi.slot = 1;
    b.insts.push_back(mi);
    std::string s = disasm(b);
    EXPECT_NE(s.find("block demo"), std::string::npos);
    EXPECT_NE(s.find("i0: [1,1:1] movi #42"), std::string::npos);
}
