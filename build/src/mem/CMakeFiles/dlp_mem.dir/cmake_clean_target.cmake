file(REMOVE_RECURSE
  "libdlp_mem.a"
)
