#include "kernels/catalog.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace dlp::kernels {

std::vector<Kernel>
allKernels()
{
    std::vector<Kernel> v;
    v.push_back(makeConvert());
    v.push_back(makeDct());
    v.push_back(makeHighpass());
    v.push_back(makeFft());
    v.push_back(makeLu());
    v.push_back(makeMd5());
    v.push_back(makeBlowfish());
    v.push_back(makeRijndael());
    v.push_back(makeVertexSimple());
    v.push_back(makeFragmentSimple());
    v.push_back(makeVertexReflection());
    v.push_back(makeFragmentReflection());
    v.push_back(makeVertexSkinning());
    v.push_back(makeAnisotropic());
    return v;
}

Kernel
kernelByName(const std::string &name)
{
    if (name == "convert")
        return makeConvert();
    if (name == "dct")
        return makeDct();
    if (name == "highpassfilter")
        return makeHighpass();
    if (name == "fft")
        return makeFft();
    if (name == "lu")
        return makeLu();
    if (name == "md5")
        return makeMd5();
    if (name == "blowfish")
        return makeBlowfish();
    if (name == "rijndael")
        return makeRijndael();
    if (name == "vertex-simple")
        return makeVertexSimple();
    if (name == "fragment-simple")
        return makeFragmentSimple();
    if (name == "vertex-reflection")
        return makeVertexReflection();
    if (name == "fragment-reflection")
        return makeFragmentReflection();
    if (name == "vertex-skinning")
        return makeVertexSkinning();
    if (name == "anisotropic-filter")
        return makeAnisotropic();
    fatal("unknown kernel '%s'", name.c_str());
}

uint64_t
kernelSeed(const std::string &name)
{
    // Stable per-kernel seeds: FNV-1a of the name mixed with a project
    // constant, so adding kernels never reshuffles existing datasets.
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h ^ 0xd1f7a9e5cafe4242ull;
}

std::vector<uint8_t>
kernelKeyBytes(const std::string &name, size_t n)
{
    Rng rng(kernelSeed(name));
    std::vector<uint8_t> key(n);
    for (auto &k : key)
        k = static_cast<uint8_t>(rng.next());
    return key;
}

} // namespace dlp::kernels
