/**
 * @file
 * The differential IR fuzzer.
 *
 * Generates small random-but-seeded kernels from the same IR vocabulary
 * the real benchmarks use (static and data-dependent loops, carries,
 * wide loads, scratch staging, lookup tables, irregular loads), computes
 * the expected outputs with the IR interpreter -- the semantic reference
 * both scheduler lowerings must match -- and runs the kernel through
 * every requested Table 5 machine configuration, diffing the outputs
 * element for element and evaluating the invariant auditor on every run.
 *
 * On a failure the fuzzer greedily shrinks the generator parameters
 * (fewer records, fewer nodes, no loops/tables/wide/cached/scratch)
 * while the failure reproduces, and reports a one-line replay command
 * with the seed, so a CI counterexample is a single copy-paste away
 * from a local debugger.
 */

#ifndef DLP_VERIFY_FUZZ_HH
#define DLP_VERIFY_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/ir.hh"

namespace dlp::verify {

/**
 * Generator parameters. The generated program is a pure function of
 * (seed, these knobs), which is what makes greedy shrinking and replay
 * commands possible.
 */
struct FuzzOptions
{
    uint64_t seed = 1;
    unsigned records = 24;    ///< records in the generated batch
    unsigned nodeBudget = 24; ///< random compute nodes to mix in
    unsigned loops = 2;       ///< loop constructs to attempt
    bool tables = true;       ///< allow lookup-table loads
    bool wideLoads = true;    ///< allow wide (LMW-style) input fetches
    bool cachedLoads = true;  ///< allow irregular (cached) loads
    bool scratch = true;      ///< allow scratch store/reload staging
    bool audit = true;        ///< evaluate the invariant auditor per run
    /**
     * Cross-validate the static verifier (src/check) against the
     * dynamic differential: every dynamically diverging case is also
     * run through check::verify -- it must either trip a static rule
     * (counted in FuzzReport::staticallyCaught) or be logged as a
     * static-coverage gap; a case that passes dynamically but has
     * static Error findings is itself a failure (kind "static").
     */
    bool staticCheck = false;

    /**
     * Cross-validate the static cost model (src/cost): after every run,
     * recompute its closed-form lower bound on total ticks from the
     * result's cost summary and require it not to exceed the simulated
     * tick count. A violation is a failure of kind "cost" -- a random
     * kernel on which the "sound" bound over-promised -- and shrinks
     * and replays like any other counterexample.
     */
    bool cost = false;

    /**
     * Differential epoch fast-forwarding: run every case twice, once
     * with the fast-forwarder disabled and once enabled, serialize both
     * ExperimentResults (host-side measurement fields scrubbed) and
     * diff them byte for byte. Any divergence is a failure of kind
     * "fastforward" -- the fast-forwarder's contract is bit-identity.
     */
    bool ffDiff = false;

    /** Configurations to run; empty means all of Table 5. */
    std::vector<std::string> configs;
};

/** One minimized counterexample. */
struct FuzzFailure
{
    uint64_t seed = 0;
    std::string config;
    /// "mismatch", "exception", "audit", "static", "fastforward" or
    /// "cost"
    std::string kind;
    std::string detail; ///< first differing word / what() / violation
    FuzzOptions shrunk; ///< smallest options still reproducing it
    std::string replay; ///< one-line fuzz_ir command reproducing it

    /// @name Static cross-validation (staticCheck mode only).
    /// @{
    bool staticallyCaught = false; ///< check::verify also rejects it
    std::string staticRule;        ///< first Error rule it trips
    /// @}
};

/** Outcome of a fuzzing session. */
struct FuzzReport
{
    uint64_t runs = 0; ///< (seed, config) simulations executed
    std::vector<FuzzFailure> failures; ///< already minimized

    /// @name Static cross-validation tallies (staticCheck mode only).
    /// @{
    uint64_t staticallyCaught = 0; ///< dynamic failures check also rejects
    uint64_t staticGaps = 0;       ///< dynamic failures check misses
    /// @}

    bool clean() const { return failures.empty(); }
};

/** Deterministically build the kernel for (opts.seed, opts). */
kernels::Kernel buildFuzzKernel(const FuzzOptions &opts);

/** Fuzz one seed across opts.configs; failures come back minimized. */
FuzzReport fuzzOne(const FuzzOptions &opts);

/** Fuzz a list of seeds with shared knobs; aggregates all failures. */
FuzzReport fuzzSeeds(const std::vector<uint64_t> &seeds,
                     const FuzzOptions &base);

/** The replay command line for a set of options on one config. */
std::string replayCommand(const FuzzOptions &opts,
                          const std::string &config);

/**
 * Human-readable listing of a kernel's dataflow graph (one node per
 * line), for inspecting a minimized counterexample (`fuzz_ir --dump`).
 */
std::string describeKernel(const kernels::Kernel &k);

} // namespace dlp::verify

#endif // DLP_VERIFY_FUZZ_HH
