file(REMOVE_RECURSE
  "libdlp_analysis.a"
)
