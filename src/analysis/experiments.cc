#include "analysis/experiments.hh"

#include <algorithm>

#include "analysis/report.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "kernels/workload.hh"

namespace dlp::analysis {

const std::vector<std::string> &
perfKernels()
{
    static const std::vector<std::string> names = {
        "convert",        "dct",
        "highpassfilter", "fft",
        "lu",             "md5",
        "blowfish",       "rijndael",
        "vertex-simple",  "fragment-simple",
        "vertex-reflection", "fragment-reflection",
        "vertex-skinning"};
    return names;
}

const std::vector<std::string> &
figure5Order()
{
    // Figure 5 groups programs by preferred configuration: the
    // S-preferring pair, then the S-O group, then the M-D group.
    static const std::vector<std::string> names = {
        "fft",           "lu",
        "convert",       "dct",
        "highpassfilter","vertex-reflection",
        "fragment-reflection", "fragment-simple",
        "vertex-simple", "md5",
        "blowfish",      "rijndael",
        "vertex-skinning"};
    return names;
}

arch::ExperimentResult
runExperiment(const std::string &kernel, const std::string &config,
              uint64_t scaleDiv, uint64_t seed)
{
    uint64_t scale = kernels::defaultScale(kernel);
    if (scaleDiv > 1) {
        if (kernel == "fft") {
            // Transform length must stay a power of two.
            while (scaleDiv > 1 && scale > 32) {
                scale /= 2;
                scaleDiv /= 2;
            }
        } else {
            scale = std::max<uint64_t>(scale / scaleDiv, 16);
        }
    }
    auto wl = kernels::makeWorkload(kernel, scale, seed);
    arch::TripsProcessor cpu(arch::configByName(config));
    auto res = cpu.run(*wl);
    fatal_if(!res.verified, "%s on %s failed verification: %s",
             kernel.c_str(), config.c_str(), res.error.c_str());
    return res;
}

Grid
runGrid(uint64_t scaleDiv, uint64_t seed)
{
    Grid grid;
    for (const auto &kernel : perfKernels())
        for (const auto &config : arch::allConfigNames())
            grid[kernel][config] =
                runExperiment(kernel, config, scaleDiv, seed);
    return grid;
}

double
speedup(const Grid &grid, const std::string &kernel,
        const std::string &config)
{
    const auto &base = grid.at(kernel).at("baseline");
    const auto &cfg = grid.at(kernel).at(config);
    panic_if(cfg.cycles == 0, "zero cycles for %s on %s", kernel.c_str(),
             config.c_str());
    return double(base.cycles) / double(cfg.cycles);
}

std::string
bestConfig(const Grid &grid, const std::string &kernel)
{
    std::string best = "baseline";
    Cycles bestCycles = grid.at(kernel).at("baseline").cycles;
    for (const auto &config : arch::allConfigNames()) {
        Cycles c = grid.at(kernel).at(config).cycles;
        if (c < bestCycles) {
            bestCycles = c;
            best = config;
        }
    }
    return best;
}

double
meanSpeedup(const Grid &grid, const std::string &config)
{
    std::vector<double> speedups;
    for (const auto &kernel : perfKernels()) {
        std::string cfg =
            config == "flexible" ? bestConfig(grid, kernel) : config;
        speedups.push_back(speedup(grid, kernel, cfg));
    }
    return harmonicMean(speedups);
}

} // namespace dlp::analysis
