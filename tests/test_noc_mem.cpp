/**
 * @file
 * Unit tests for the mesh operand network and the memory system.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"
#include "mem/memory_system.hh"
#include "noc/mesh.hh"

using namespace dlp;
using namespace dlp::noc;
using namespace dlp::mem;

// ---------------------------------------------------------------------
// Mesh
// ---------------------------------------------------------------------

TEST(Mesh, LocalBypassIsFree)
{
    MeshNetwork mesh(8, 8);
    EXPECT_EQ(mesh.route({3, 3}, {3, 3}, 100), 100u);
}

TEST(Mesh, UncontendedLatencyIsHopCount)
{
    MeshNetwork mesh(8, 8, /*hopTicks=*/1);
    // XY route (1,1) -> (4,5): 4 column hops + 3 row hops = 7 ticks.
    EXPECT_EQ(mesh.route({1, 1}, {4, 5}, 0), 7u);
}

TEST(Mesh, DistanceIsManhattan)
{
    MeshNetwork mesh(8, 8);
    EXPECT_EQ(mesh.distance({0, 0}, {7, 7}), 14u);
    EXPECT_EQ(mesh.distance({2, 5}, {2, 5}), 0u);
}

TEST(Mesh, ContentionSerializesALink)
{
    MeshNetwork mesh(4, 4, 1);
    // Two operands over the same first link at the same tick: the
    // second waits one tick at the link.
    Tick a = mesh.route({0, 0}, {0, 3}, 10);
    Tick b = mesh.route({0, 0}, {0, 3}, 10);
    EXPECT_EQ(a, 13u);
    EXPECT_EQ(b, 14u);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    MeshNetwork mesh(4, 4, 1);
    Tick a = mesh.route({0, 0}, {0, 1}, 10);
    Tick b = mesh.route({3, 3}, {3, 2}, 10);
    EXPECT_EQ(a, 11u);
    EXPECT_EQ(b, 11u);
}

TEST(Mesh, EdgeRoundTripCrossesPort)
{
    MeshNetwork mesh(4, 4, 1);
    // Tile (2,2) to its row edge: 2 west hops + the edge crossing.
    EXPECT_EQ(mesh.routeToEdge({2, 2}, 0), 3u);
    // Back from the edge to (2,2).
    EXPECT_EQ(mesh.routeFromEdge(2, {2, 2}, 10), 13u);
}

TEST(Mesh, CountsHopsAndOperands)
{
    MeshNetwork mesh(4, 4, 1);
    mesh.route({0, 0}, {1, 1}, 0);
    EXPECT_EQ(mesh.operandsRouted(), 1u);
    EXPECT_EQ(mesh.totalHops(), 2u);
}

// ---------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------

TEST(Cache, MissesThenHits)
{
    CacheModel cache("t", 8 * 1024, 2, 32, 2, 2);
    EXPECT_FALSE(cache.probe(0x1000, false));
    EXPECT_TRUE(cache.probe(0x1000, false));
    EXPECT_TRUE(cache.probe(0x1008, false)); // same line
    EXPECT_FALSE(cache.probe(0x1040, false));
}

TEST(Cache, LruEviction)
{
    // 2-way, 1 set per bank at this size: three distinct lines mapping
    // to the same set evict the least recently used.
    CacheModel cache("t", 2 * 32 * 2, 2, 32, 2, 1);
    // Bank selection is line-interleaved; pick same-bank lines (stride
    // = banks * lineBytes).
    EXPECT_FALSE(cache.probe(0 * 64, false));
    EXPECT_FALSE(cache.probe(1 * 64 * 2, false));
    EXPECT_TRUE(cache.probe(0, false));
    EXPECT_FALSE(cache.probe(4 * 64 * 2, false)); // evicts LRU (line 128)
    EXPECT_FALSE(cache.probe(1 * 64 * 2, false));
}

TEST(Cache, WritesDoNotAllocate)
{
    CacheModel cache("t", 8 * 1024, 2, 32, 2, 2);
    EXPECT_FALSE(cache.probe(0x2000, true));
    EXPECT_FALSE(cache.probe(0x2000, false)); // still a miss, then fills
    EXPECT_TRUE(cache.probe(0x2000, false));
}

// ---------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------

TEST(MemorySystem, SmcReadWritesRoundTrip)
{
    MemParams p;
    MemorySystem mem(p, /*smc=*/true);
    mem.smc().poke(100, 42);
    Word out[2] = {0, 0};
    mem.streamRead(0, 100, 1, 0, out);
    EXPECT_EQ(out[0], 42u);
    mem.streamWrite(3, 200, 7, 0);
    EXPECT_EQ(mem.smc().peek(200), 7u);
}

TEST(MemorySystem, StridedStreamRead)
{
    MemParams p;
    MemorySystem mem(p, true);
    for (int i = 0; i < 8; ++i)
        mem.smc().poke(i * 8, 100 + i);
    Word out[8];
    mem.streamRead(0, 0, 8, 0, out, /*stride=*/8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], Word(100 + i));
}

TEST(MemorySystem, WideReadAmortizesThePort)
{
    MemParams p;
    MemorySystem mem(p, true);
    // 8 contiguous words = 2 line slots; 8 scalar reads = 8 line slots.
    Tick wide = mem.streamRead(0, 0, 8, 0, nullptr) ;
    MemorySystem mem2(p, true);
    Tick scalarEnd = 0;
    for (int i = 0; i < 8; ++i)
        scalarEnd = mem2.streamRead(0, i, 1, 0, nullptr);
    EXPECT_LT(wide, scalarEnd);
}

TEST(MemorySystem, BaselineFallsBackToCaches)
{
    MemParams p;
    MemorySystem mem(p, /*smc=*/false);
    mem.smc().poke(5, 99);
    Word out = 0;
    Tick smcTime;
    {
        MemorySystem fast(p, true);
        fast.smc().poke(5, 99);
        smcTime = fast.streamRead(0, 5, 1, 0, &out);
    }
    Tick slowTime = mem.streamRead(0, 5, 1, 0, &out);
    EXPECT_EQ(out, 99u);
    // First access misses all the way to main memory on the baseline.
    EXPECT_GT(slowTime, smcTime);
    EXPECT_GT(mem.l1().misses(), 0u);
}

TEST(MemorySystem, CachedAccessWarmsUp)
{
    MemParams p;
    MemorySystem mem(p, true);
    mem.mainMemory().writeWord(0x1000, 77);
    Word v = 0;
    Tick cold = mem.cachedRead(0, 0x1000, 0, v);
    EXPECT_EQ(v, 77u);
    Tick warmStart = cold;
    Tick warm = mem.cachedRead(0, 0x1000, warmStart, v) - warmStart;
    EXPECT_LT(warm, cold);
}

TEST(MemorySystem, DmaChargesBandwidth)
{
    MemParams p;
    MemorySystem mem(p, true);
    Tick small = mem.dma(0, 64, 0);
    MemorySystem mem2(p, true);
    Tick large = mem2.dma(0, 4096, 0);
    EXPECT_GT(large, small);
}
