/**
 * @file
 * The static performance oracle under test: the per-segment cost
 * passes on directed plans, the rank-correlation statistic itself,
 * the PERF-* advisory rules on handcrafted reports, the placement
 * ranking hook, the cost block's store round trip -- and the two
 * cross-validation contracts on the real kernel grid: the sound lower
 * bound must hold on every run, and the throughput estimate must rank
 * every kernel's configurations like the simulator does (Spearman
 * >= 0.9, the same floor CI enforces through cost_report --validate).
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "arch/configs.hh"
#include "arch/processor.hh"
#include "check/report.hh"
#include "common/logging.hh"
#include "cost/cost.hh"
#include "driver/sweep.hh"
#include "kernels/catalog.hh"
#include "sched/linearize.hh"
#include "sched/rank.hh"
#include "sched/simd_lowering.hh"
#include "store/codec.hh"
#include "verify/cost_invariants.hh"

using namespace dlp;

namespace {

/** Lower the plan (kernel, config) exactly as the processor would. */
sched::SimdPlan
simdPlanFor(const std::string &kernel, const std::string &config)
{
    kernels::Kernel k = kernels::kernelByName(kernel);
    core::MachineParams m = arch::configByName(config);
    uint64_t chunkRecords = 0;
    sched::StreamLayout layout = arch::makeStreamLayout(k, m, chunkRecords);
    return sched::lowerSimd(k, m, layout);
}

sched::MimdPlan
mimdPlanFor(const std::string &kernel, const std::string &config)
{
    kernels::Kernel k = kernels::kernelByName(kernel);
    core::MachineParams m = arch::configByName(config);
    uint64_t chunkRecords = 0;
    sched::StreamLayout layout = arch::makeStreamLayout(k, m, chunkRecords);
    return sched::lowerMimd(k, m, layout);
}

} // namespace

// --- The rank statistic ---------------------------------------------------

TEST(Spearman, PerfectAndReversedOrder)
{
    std::vector<double> a{1, 2, 3, 4, 5};
    std::vector<double> up{10, 20, 30, 40, 50};
    std::vector<double> down{50, 40, 30, 20, 10};
    EXPECT_DOUBLE_EQ(verify::spearman(a, up), 1.0);
    EXPECT_DOUBLE_EQ(verify::spearman(a, down), -1.0);
}

TEST(Spearman, DegenerateInputsAreVacuouslyOrdered)
{
    EXPECT_DOUBLE_EQ(verify::spearman({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(verify::spearman({1.0}, {2.0}), 1.0);
    // A constant sample imposes no order to violate.
    EXPECT_DOUBLE_EQ(verify::spearman({3, 3, 3}, {1, 2, 3}), 1.0);
}

TEST(Spearman, TiesShareAveragedRanks)
{
    // a = {1, 2, 2, 4} ranks to {1, 2.5, 2.5, 4}; a monotone partner
    // with the tie broken either way correlates identically.
    double r1 = verify::spearman({1, 2, 2, 4}, {10, 20, 30, 40});
    double r2 = verify::spearman({1, 2, 2, 4}, {10, 30, 20, 40});
    EXPECT_DOUBLE_EQ(r1, r2);
    EXPECT_GT(r1, 0.9);
    EXPECT_LT(r1, 1.0); // strict ties vs strict order is not perfect
}

TEST(Spearman, ToleranceBandsNoiseLevelDifferencesIntoTies)
{
    // Two simulator runs 0.26% apart are the same speed; a prediction
    // that swaps only that pair must not be penalized once the
    // tolerance band is wider than the gap.
    std::vector<double> sim{5.797, 5.812, 10.0};
    std::vector<double> pred{5.85, 5.80, 10.0};
    EXPECT_LT(verify::spearman(sim, pred), 1.0);
    EXPECT_DOUBLE_EQ(verify::spearman(sim, pred, 0.01), 1.0);
}

TEST(Spearman, ToleranceBandDoesNotChainAcrossAGradient)
{
    // Each neighbour is within 1% of the last, but the band anchors at
    // its group's smallest member, so a real gradient keeps its order.
    std::vector<double> a{100, 100.9, 101.8, 102.7, 103.6};
    std::vector<double> b{1, 2, 3, 4, 5};
    double rho = verify::spearman(a, b, 0.001);
    EXPECT_DOUBLE_EQ(rho, 1.0);
}

// --- SIMD analysis on real lowered plans ----------------------------------

TEST(CostSimd, SegmentInvariantsHoldOnALoweredKernel)
{
    core::MachineParams m = arch::configByName("S");
    sched::SimdPlan plan = simdPlanFor("convert", "S");
    cost::CostReport rep = cost::analyzeSimd(plan, m);

    ASSERT_TRUE(rep.analyzed);
    EXPECT_FALSE(rep.mimd);
    ASSERT_FALSE(rep.segments.empty());

    uint64_t mapMin = UINT64_MAX, boundMin = UINT64_MAX, cpMax = 0;
    for (const auto &sc : rep.segments) {
        // The steady bound is exactly the documented combination.
        EXPECT_EQ(sc.boundTicks,
                  std::max(sc.maxPressureTicks,
                           sc.gapTicks + sc.steadyWritePathTicks))
            << sc.block;
        // The full-graph drain path includes every steady write path.
        EXPECT_GE(sc.writeDrainTicks, sc.steadyWritePathTicks) << sc.block;
        // The critical path ranges over all paths, write paths included.
        EXPECT_GE(sc.criticalPathTicks, sc.writeDrainTicks) << sc.block;
        EXPECT_LE(sc.hopLowerBound, sc.hopMass) << sc.block;
        EXPECT_GT(sc.insts, 0u) << sc.block;
        EXPECT_GE(sc.insts, sc.steadyInsts) << sc.block;
        EXPECT_GT(sc.rsOccupancy, 0.0) << sc.block;
        mapMin = std::min(mapMin, sc.mapTicks);
        boundMin = std::min(boundMin, sc.boundTicks);
        cpMax = std::max(cpMax, sc.criticalPathTicks);
    }
    EXPECT_EQ(rep.mapTicksMin, mapMin);
    EXPECT_EQ(rep.boundTicksPerActivation, boundMin);
    EXPECT_EQ(rep.criticalPathTicks, cpMax);
    EXPECT_GT(rep.predictedTicksPerRecord, 0.0);
}

TEST(CostSimd, RevitalizationShrinksThePacingGap)
{
    // Without instruction revitalization the engine re-maps the block
    // for every activation, so the pacing gap IS the map time; with the
    // mechanism the gap is the (much smaller) revitalize delay.
    cost::CostReport s = cost::analyzeSimd(simdPlanFor("convert", "S"),
                                           arch::configByName("S"));
    cost::CostReport b =
        cost::analyzeSimd(simdPlanFor("convert", "baseline"),
                          arch::configByName("baseline"));
    ASSERT_TRUE(s.analyzed);
    ASSERT_TRUE(b.analyzed);
    EXPECT_FALSE(s.perActivationRemap);
    EXPECT_TRUE(b.perActivationRemap);
    for (const auto &sc : b.segments)
        EXPECT_EQ(sc.gapTicks, sc.mapTicks) << sc.block;
    for (const auto &sc : s.segments)
        EXPECT_LT(sc.gapTicks, sc.mapTicks) << sc.block;
}

TEST(CostSimd, ShortRunsAmortizeWorseThanTheAsymptote)
{
    // fft lowers to a resident single-segment plan on S: the whole run
    // pays one map and one pipeline ramp, so driving few records leaves
    // that overhead poorly amortized. (Non-resident plans re-map every
    // group and are insensitive to the record count by design.)
    core::MachineParams m = arch::configByName("S");
    sched::SimdPlan plan = simdPlanFor("fft", "S");
    ASSERT_TRUE(plan.resident());
    double asym = cost::analyzeSimd(plan, m).predictedTicksPerRecord;
    double shortRun =
        cost::analyzeSimd(plan, m, /*records=*/24).predictedTicksPerRecord;
    double batched = cost::analyzeSimd(plan, m, /*records=*/4096,
                                       /*batches=*/8)
                         .predictedTicksPerRecord;
    double unbatched = cost::analyzeSimd(plan, m, /*records=*/4096)
                           .predictedTicksPerRecord;
    EXPECT_GT(shortRun, asym); // 24 records pay the map almost alone
    EXPECT_GE(batched, unbatched); // every batch repays map and ramp
}

// --- MIMD analysis --------------------------------------------------------

TEST(CostMimd, AnalysisCarriesTheBoundIngredients)
{
    core::MachineParams m = arch::configByName("M");
    sched::MimdPlan plan = mimdPlanFor("convert", "M");
    cost::CostReport rep = cost::analyzeMimd(plan, m);
    ASSERT_TRUE(rep.analyzed);
    EXPECT_TRUE(rep.mimd);
    EXPECT_EQ(rep.tiles, m.tiles());
    EXPECT_EQ(rep.gridCols, m.cols);
    EXPECT_GT(rep.setupTicks, 0u);
    EXPECT_GT(rep.minCycleInsts, 0u); // the record loop re-fires
    EXPECT_GT(rep.predictedTicksPerRecord, 0.0);
}

TEST(CostMimd, L0DataStoreNeverSlowsATableKernelDown)
{
    // The L0 data store turns deep table lookups into one-cycle local
    // reads; the model must preserve that mechanism differential.
    sched::MimdPlan mPlan = mimdPlanFor("blowfish", "M");
    sched::MimdPlan mdPlan = mimdPlanFor("blowfish", "M-D");
    double m = cost::analyzeMimd(mPlan, arch::configByName("M"))
                   .predictedTicksPerRecord;
    double md = cost::analyzeMimd(mdPlan, arch::configByName("M-D"))
                    .predictedTicksPerRecord;
    EXPECT_GE(m, md);
}

// --- PERF-* advisory rules ------------------------------------------------

namespace {

/** A minimal analyzed SIMD report with one calm segment. */
cost::CostReport
calmReport()
{
    cost::CostReport rep;
    rep.analyzed = true;
    rep.mimd = false;
    rep.plan = "test";
    rep.unroll = 1;
    cost::SegmentCost sc;
    sc.block = "b0";
    sc.insts = 8;
    sc.hopMass = 4;
    sc.hopLowerBound = 4;
    sc.gapTicks = 10;
    sc.steadyWritePathTicks = 20;
    sc.maxPressureTicks = 12; // below pacing: not resource-bound
    sc.rsOccupancy = 0.9;
    rep.segments.push_back(sc);
    rep.rsOccupancy = 0.9;
    return rep;
}

} // namespace

TEST(PerfRules, CalmReportRaisesNoAdvisories)
{
    core::MachineParams m = arch::configByName("S");
    check::Report out;
    cost::perfRules(calmReport(), m, out);
    EXPECT_EQ(out.diags.size(), 0u);
}

TEST(PerfRules, HopMassAboveTheFloorFiresPerfHop)
{
    core::MachineParams m = arch::configByName("S");
    cost::CostReport rep = calmReport();
    rep.segments[0].hopMass = 100;
    rep.segments[0].hopLowerBound = 2;
    check::Report out;
    cost::perfRules(rep, m, out);
    EXPECT_TRUE(out.has("PERF-HOP"));
    // Advisories never make a report unclean.
    EXPECT_TRUE(out.clean());
    for (const auto &f : out.diags)
        EXPECT_EQ(f.severity, check::Severity::Advisory) << f.rule;
}

TEST(PerfRules, ResourceBoundSteadyStateFiresPerfCap)
{
    core::MachineParams m = arch::configByName("S");
    cost::CostReport rep = calmReport();
    rep.segments[0].maxPressureTicks = 64; // above gap + write path
    rep.segments[0].bottleneck = "smcBank0";
    check::Report out;
    cost::perfRules(rep, m, out);
    EXPECT_TRUE(out.has("PERF-CAP"));
    EXPECT_TRUE(out.clean());
}

TEST(PerfRules, UnderfilledStationsFirePerfUnroll)
{
    core::MachineParams m = arch::configByName("S");
    cost::CostReport rep = calmReport();
    rep.rsOccupancy = 0.1; // far below half, tiny segment fits twice
    check::Report out;
    cost::perfRules(rep, m, out);
    EXPECT_TRUE(out.has("PERF-UNROLL"));
    EXPECT_TRUE(out.clean());
}

TEST(PerfRules, MimdReportsRaiseNoSimdAdvisories)
{
    core::MachineParams m = arch::configByName("M");
    cost::CostReport rep = calmReport();
    rep.mimd = true;
    rep.segments[0].hopMass = 1000;
    check::Report out;
    cost::perfRules(rep, m, out);
    EXPECT_EQ(out.diags.size(), 0u);
}

// --- Deterministic finding order ------------------------------------------

TEST(FindingOrder, SortIsDeterministicAcrossDiscoveryOrder)
{
    auto build = [](bool reversed) {
        check::Report r;
        std::vector<std::tuple<std::string, std::string, int>> entries = {
            {"PERF-HOP", "beta", 3},
            {"PERF-CAP", "alpha", 1},
            {"PERF-HOP", "alpha", 2},
            {"PERF-HOP", "alpha", 1},
        };
        if (reversed)
            std::reverse(entries.begin(), entries.end());
        for (const auto &[rule, block, inst] : entries)
            r.add(rule, block, inst, 0, "msg");
        r.sortFindings();
        return r.describe();
    };
    EXPECT_EQ(build(false), build(true));
}

// --- Placement ranking hook -----------------------------------------------

TEST(RankPlacements, OrdersByPredictionAndKeepsTiesStable)
{
    core::MachineParams m = arch::configByName("S");
    sched::SimdPlan plan = simdPlanFor("convert", "S");
    std::vector<sched::SimdPlan> candidates{plan, plan, plan};
    auto ranked = sched::rankPlacements(candidates, m);
    ASSERT_EQ(ranked.size(), 3u);
    // Identical candidates tie; ties keep candidate order.
    EXPECT_EQ(ranked[0].index, 0u);
    EXPECT_EQ(ranked[1].index, 1u);
    EXPECT_EQ(ranked[2].index, 2u);
    EXPECT_GT(ranked[0].ticksPerRecord, 0.0);
    EXPECT_DOUBLE_EQ(ranked[0].ticksPerRecord, ranked[2].ticksPerRecord);
}

// --- Store round trip of the cost block -----------------------------------

TEST(CostCodec, CostSummarySurvivesTheStoreRoundTrip)
{
    setQuietLogging(true);
    arch::ExperimentResult res =
        driver::runTask({"convert", "S", /*scaleDiv=*/16});
    ASSERT_TRUE(res.cost.analyzed);
    arch::ExperimentResult dec =
        store::resultFromJson(store::resultToJson(res));
    EXPECT_EQ(dec.cost.analyzed, res.cost.analyzed);
    EXPECT_EQ(dec.cost.mimd, res.cost.mimd);
    EXPECT_EQ(dec.cost.unroll, res.cost.unroll);
    EXPECT_EQ(dec.cost.mapTicksMin, res.cost.mapTicksMin);
    EXPECT_EQ(dec.cost.boundTicksPerActivation,
              res.cost.boundTicksPerActivation);
    EXPECT_EQ(dec.cost.setupTicks, res.cost.setupTicks);
    EXPECT_EQ(dec.cost.bottleneck, res.cost.bottleneck);
    EXPECT_DOUBLE_EQ(dec.cost.predictedTicksPerRecord,
                     res.cost.predictedTicksPerRecord);
    // The recomputed sound bound agrees bit-for-bit after decoding.
    EXPECT_EQ(verify::costBoundTicks(dec), verify::costBoundTicks(res));
}

// --- The grid-level cross-validation contracts ----------------------------

class CostGrid : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setQuietLogging(true);
        driver::SweepPlan plan;
        std::vector<std::string> kernels;
        for (const auto &k : kernels::allKernels())
            kernels.push_back(k.name);
        plan.addGrid(kernels, arch::allConfigNames(), /*scaleDiv=*/8,
                     /*seed=*/1234);
        driver::SweepOptions opts;
        opts.jobs = std::max(1u, std::thread::hardware_concurrency() - 1);
        results = new std::vector<arch::ExperimentResult>(
            driver::runSweep(plan, opts));
    }

    static void TearDownTestSuite()
    {
        delete results;
        results = nullptr;
    }

    static std::vector<arch::ExperimentResult> *results;
};

std::vector<arch::ExperimentResult> *CostGrid::results = nullptr;

TEST_F(CostGrid, EveryExperimentCarriesAnAnalyzedCostReport)
{
    ASSERT_EQ(results->size(),
              kernels::allKernels().size() * arch::allConfigNames().size());
    for (const auto &res : *results) {
        EXPECT_TRUE(res.verified) << res.kernel << "/" << res.config;
        EXPECT_TRUE(res.cost.analyzed) << res.kernel << "/" << res.config;
        EXPECT_GT(res.cost.predictedTicksPerRecord, 0.0)
            << res.kernel << "/" << res.config;
    }
}

TEST_F(CostGrid, SoundLowerBoundHoldsOnEveryRun)
{
    for (const auto &res : *results) {
        uint64_t bound = verify::costBoundTicks(res);
        EXPECT_LE(bound, cyclesToTicks(res.cycles))
            << res.kernel << "/" << res.config;
    }
}

TEST_F(CostGrid, EstimateRanksEveryKernelLikeTheSimulator)
{
    // The CI contract: Spearman >= 0.9 for every kernel across the six
    // Table 5 configurations.
    for (const auto &s : verify::costRankStats(*results)) {
        EXPECT_EQ(s.configs, arch::allConfigNames().size()) << s.kernel;
        EXPECT_GE(s.spearman, 0.9) << s.kernel;
    }
    EXPECT_TRUE(verify::costInvariants(*results, 0.9).empty());
}
