/**
 * @file
 * The epoch lowering pipeline: staged validation passes that turn two
 * recorded steady-state units (activations of a resident plan, whole
 * segment groups otherwise) into a replayable EpochPlan.
 *
 * Structured after nvFuser's GpuLower: an explicit, ordered pass list
 * (passNames()), each pass either contributing to the analysis maps and
 * the plan under construction or failing with a queryable (pass,
 * detail) pair. A failed lowering is not an error — the engine falls
 * back to event-level simulation and backs off — so every check is
 * conservative: the plan is only produced when bit-identical replay is
 * provable from the two iterations alone.
 *
 * The passes, in order:
 *
 *  1. ClassifyOps          every instruction's timing must be
 *                          data-independent (pure compute, register
 *                          ports, SMC streams, L0 tables). Cached
 *                          memory, control and free-running ops bail.
 *  2. ScheduleStability    both units fired the same instructions at
 *                          the same relative ticks, partitioned into
 *                          the same activations, with the same
 *                          occupancy envelope and period.
 *  3. StatDeltaStability   every statistic advanced by the same delta
 *                          in both iterations (the deltas become the
 *                          bulk advances).
 *  4. ResourcePeriodicity  every resource calendar is either untouched
 *                          or left an identical relative tail — the
 *                          induction step that makes all future
 *                          iterations identical.
 *  5. CounterLaws          event-queue/structure counters advanced
 *                          identically, and every planned bulk
 *                          application is exact in double arithmetic
 *                          (integral deltas, totals within 2^53).
 *  6. BuildReplay          assemble the final EpochPlan.
 */

#ifndef DLP_EPOCH_PASSES_HH
#define DLP_EPOCH_PASSES_HH

#include <string>
#include <vector>

#include "epoch/ir.hh"

namespace dlp::epoch {

/** Per-instruction classification from the ClassifyOps pass. */
struct ClassifyResult
{
    bool allSummarizable = false;
    /// Instruction indices whose ops forced a bail-out (empty on success).
    std::vector<uint32_t> blockers;
};

class EpochLower
{
  public:
    /** Run the full pass list over the recorded input. */
    explicit EpochLower(const EpochInput &in);

    /** Did every pass hold (plan() is valid)? */
    bool ok() const { return failedPass_ == nullptr; }

    /** Name of the first failing pass ("" when ok()). */
    std::string failedPass() const
    {
        return failedPass_ ? failedPass_ : "";
    }

    /** Human-readable reason for the failure ("" when ok()). */
    const std::string &failureDetail() const { return detail_; }

    /** The lowered replay plan; only meaningful when ok(). */
    const EpochPlan &plan() const { return plan_; }

    /** ClassifyOps analysis (valid once that pass has run). */
    const ClassifyResult &classification() const { return classify_; }

    /** The ordered pass list, for docs/tests. */
    static const std::vector<const char *> &passNames();

  private:
    bool passClassifyOps(const EpochInput &in);
    bool passScheduleStability(const EpochInput &in);
    bool passStatDeltaStability(const EpochInput &in);
    bool passResourcePeriodicity(const EpochInput &in);
    bool passCounterLaws(const EpochInput &in);
    bool passBuildReplay(const EpochInput &in);

    /** Record a failure reason; returns false for `return fail(...)`. */
    bool fail(std::string why)
    {
        detail_ = std::move(why);
        return false;
    }

    const char *failedPass_ = nullptr;
    std::string detail_;
    ClassifyResult classify_;
    EpochPlan plan_;
};

} // namespace dlp::epoch

#endif // DLP_EPOCH_PASSES_HH
