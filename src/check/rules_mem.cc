/**
 * @file
 * The static memory-ordering audit: PR 4's fuzzer-found defect class --
 * a scratch reload racing the store that feeds it -- decided from the
 * block encoding alone.
 *
 * Within one activation, two accesses to the same address with at least
 * one store are ordered only by the dataflow graph: the lowering threads
 * an ordering token (the store's completion value) into the dependent
 * access's spare source slot. This pass recomputes every access's
 * address in the linear abstract domain (check/graph.hh) and demands a
 * directed dataflow path between every overlapping pair.
 *
 * Precision notes:
 *  - Addresses with equal atom vectors differ by a known constant, so
 *    overlap is decided exactly (MEM-ORDER on a missing path).
 *  - Addresses with different atom vectors are compared by their
 *    constant parts against the plan's stream layout: the lowering
 *    always folds the region base into the constant, so different
 *    regions prove disjointness. (A hand-built address held entirely in
 *    a register defeats this and classifies as the input region.)
 *  - Anything else is a may-alias pair and reports MEM-MAY (warning).
 *  - The hardware-cached space is one alias class: cached addresses are
 *    data-dependent (that is why they are cached), so any unordered
 *    cached store pair is an error unless both addresses are constants.
 */

#include <sstream>

#include "check/rules.hh"
#include "isa/disasm.hh"

namespace dlp::check {

using isa::MappedBlock;
using isa::MappedInst;
using isa::MemSpace;
using isa::Op;

namespace {

struct Access
{
    uint32_t inst;
    bool store;
    MemSpace space;
    LinForm addr;
    int64_t width;  ///< words (SMC) or bytes (cached)
};

/** Three-valued alias verdict for one pair. */
enum class Alias
{
    Disjoint,
    Overlap,  ///< proven to touch a common word
    May
};

/** Region index of an SMC address by its constant part, or -1. */
int
regionOf(const LinForm &a, const sched::StreamLayout &layout)
{
    if (!a.known)
        return -1;
    if (a.c < 0)
        return -1;
    auto c = uint64_t(a.c);
    if (c < layout.outBase)
        return 0;
    if (c < layout.scratchBase)
        return 1;
    return 2;
}

Alias
aliasSmc(const Access &x, const Access &y,
         const sched::StreamLayout *layout)
{
    if (x.addr.sameTerms(y.addr)) {
        int64_t d = y.addr.c - x.addr.c;
        bool overlap = d < x.width && -d < y.width;
        return overlap ? Alias::Overlap : Alias::Disjoint;
    }
    if (layout) {
        int rx = regionOf(x.addr, *layout);
        int ry = regionOf(y.addr, *layout);
        if (rx >= 0 && ry >= 0 && rx != ry)
            return Alias::Disjoint;
    }
    return Alias::May;
}

Alias
aliasCached(const Access &x, const Access &y)
{
    if (x.addr.isConst() && y.addr.isConst()) {
        int64_t d = y.addr.c - x.addr.c;
        return (d < x.width && -d < y.width) ? Alias::Overlap
                                             : Alias::Disjoint;
    }
    // One alias class: unordered data-dependent accesses always race.
    return Alias::Overlap;
}

} // namespace

void
checkMemOrder(const MappedBlock &b, const BlockGraph &g,
              const BlockCtx &ctx, Report &rep)
{
    std::vector<LinForm> val = linearValues(g);

    std::vector<Access> accesses;
    for (size_t i = 0; i < b.insts.size(); ++i) {
        const MappedInst &mi = b.insts[i];
        bool mem = mi.op == Op::Ld || mi.op == Op::St || mi.op == Op::Lmw;
        if (!mem ||
            (mi.space != MemSpace::Smc && mi.space != MemSpace::Cached))
            continue;
        Access a;
        a.inst = uint32_t(i);
        a.store = mi.op == Op::St;
        a.space = mi.space;
        auto p = g.producerOf(uint32_t(i), 0);
        if (p && p->wordIdx == 0 && b.insts[p->inst].op != Op::Lmw)
            a.addr = val[p->inst];
        a.width = 1;
        if (mi.op == Op::Lmw && mi.lmwCount > 0)
            a.width = int64_t(mi.lmwCount - 1) * std::max<int64_t>(
                          1, mi.lmwStride) + 1;
        if (a.space == MemSpace::Cached)
            a.width *= int64_t(wordBytes);
        accesses.push_back(std::move(a));
    }

    bool anyStore = false;
    for (const auto &a : accesses)
        anyStore |= a.store;
    if (!anyStore)
        return;

    Reachability reach(g);
    for (size_t i = 0; i < accesses.size(); ++i) {
        for (size_t j = i + 1; j < accesses.size(); ++j) {
            const Access &x = accesses[i];
            const Access &y = accesses[j];
            if (!(x.store || y.store) || x.space != y.space)
                continue;
            Alias a = x.space == MemSpace::Smc
                          ? aliasSmc(x, y, ctx.layout)
                          : aliasCached(x, y);
            if (a == Alias::Disjoint)
                continue;
            if (reach.ordered(x.inst, y.inst))
                continue;
            std::ostringstream os;
            os << (a == Alias::Overlap ? "overlapping "
                                       : "possibly aliasing ")
               << (x.store ? "store" : "load") << " i" << x.inst << " and "
               << (y.store ? "store" : "load") << " i" << y.inst
               << " have no ordering path; they race within an "
                  "activation\n    i"
               << x.inst << ": " << isa::disasm(b.insts[x.inst])
               << "\n    i" << y.inst << ": "
               << isa::disasm(b.insts[y.inst]);
            rep.add(a == Alias::Overlap ? "MEM-ORDER" : "MEM-MAY", b.name,
                    int(x.inst), -1, os.str());
        }
    }
}

} // namespace dlp::check
