#include "obs/sampler.hh"

#include <cinttypes>

#include "common/logging.hh"

namespace dlp::obs {

StatSampler::StatSampler(uint64_t intervalTicks,
                         std::vector<StatGroup *> groups)
    : watched(std::move(groups)), interval(intervalTicks)
{
    if (interval == 0)
        return;
    series.intervalTicks = interval;
    nextTick = interval;

    // The initial snapshot runs each group's preDump hook, so scalars
    // those hooks register lazily (l1Hits and friends) exist before the
    // column list is fixed.
    for (size_t g = 0; g < watched.size(); ++g) {
        GroupSnapshot snap = watched[g]->snapshot();
        const std::string prefix = snap.name + ".";
        for (const auto &kv : snap.scalars) {
            columns.push_back({g, kv.first, Kind::Scalar});
            series.statNames.push_back(prefix + kv.first);
            series.isLevel.push_back(false);
        }
        for (const auto &kv : snap.distributions) {
            columns.push_back({g, kv.first, Kind::DistSamples});
            series.statNames.push_back(prefix + kv.first + "::samples");
            series.isLevel.push_back(false);
            columns.push_back({g, kv.first, Kind::DistSum});
            series.statNames.push_back(prefix + kv.first + "::sum");
            series.isLevel.push_back(false);
        }
        for (const auto &kv : snap.formulas) {
            columns.push_back({g, kv.first, Kind::Formula});
            series.statNames.push_back(prefix + kv.first);
            series.isLevel.push_back(true);
        }
    }
    prev = readAll();
}

std::vector<double>
StatSampler::readAll()
{
    std::vector<GroupSnapshot> snaps;
    snaps.reserve(watched.size());
    for (StatGroup *g : watched)
        snaps.push_back(g->snapshot());

    std::vector<double> values;
    values.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
        const Column &col = columns[c];
        const GroupSnapshot &snap = snaps[col.group];
        double v = c < prev.size() ? prev[c] : 0.0;
        switch (col.kind) {
          case Kind::Scalar: {
            auto it = snap.scalars.find(col.key);
            if (it != snap.scalars.end())
                v = it->second;
            break;
          }
          case Kind::DistSamples: {
            auto it = snap.distributions.find(col.key);
            if (it != snap.distributions.end())
                v = double(it->second.samples());
            break;
          }
          case Kind::DistSum: {
            auto it = snap.distributions.find(col.key);
            if (it != snap.distributions.end())
                v = it->second.sum();
            break;
          }
          case Kind::Formula: {
            auto it = snap.formulas.find(col.key);
            if (it != snap.formulas.end())
                v = it->second;
            break;
          }
        }
        values.push_back(v);
    }
    return values;
}

void
StatSampler::sample(Tick t)
{
    if (interval == 0)
        return;
    panic_if(t < lastTick,
             "stat sampler asked to sample at %" PRIu64
             " after already sampling at %" PRIu64, t, lastTick);
    std::vector<double> cur = readAll();
    std::vector<double> row(columns.size(), 0.0);
    for (size_t c = 0; c < columns.size(); ++c)
        row[c] = series.isLevel[c] ? cur[c] : cur[c] - prev[c];
    series.ticks.push_back(t);
    series.samples.push_back(std::move(row));
    prev = std::move(cur);
    lastTick = t;
    // Catch up past t: a long activation may cross several boundaries;
    // they collapse into this one row (the deltas already cover them).
    nextTick = (t / interval + 1) * interval;
}

TimeSeries
StatSampler::finalize(Tick finalTick)
{
    if (interval != 0) {
        // The closing row makes the conservation law exact: column sums
        // of the delta rows equal the final aggregate counters.
        sample(std::max(finalTick, lastTick));
    }
    return std::move(series);
}

} // namespace dlp::obs
