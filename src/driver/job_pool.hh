/**
 * @file
 * A work-stealing thread-pool job engine for the experiment sweep
 * driver.
 *
 * Every worker owns a deque of jobs: it pushes and pops work at the
 * back (LIFO, cache-friendly for jobs that spawn jobs) and steals from
 * the *front* of a victim's deque when its own runs dry, so long jobs
 * submitted early migrate to idle workers instead of serializing
 * behind their submitter. Submission round-robins across the worker
 * deques to seed initial balance.
 *
 * The pool is a pure execution engine: it knows nothing about
 * simulations. Determinism is the caller's job — see driver::runSweep,
 * which gives every job an output slot so completion order never
 * affects aggregated results.
 *
 * Exceptions thrown by jobs are captured; the first one is rethrown
 * from wait() (subsequent ones are dropped, matching the "first
 * failure wins" convention of ctest -j). The pool stays usable after
 * a failed batch.
 */

#ifndef DLP_DRIVER_JOB_POOL_HH
#define DLP_DRIVER_JOB_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dlp::driver {

class JobPool
{
  public:
    using Job = std::function<void()>;

    /**
     * Start the pool.
     *
     * @param workers worker-thread count; 0 means defaultWorkers().
     *                A pool of 1 still runs jobs on a worker thread
     *                (callers wanting a strictly serial path should
     *                not use a pool at all).
     */
    explicit JobPool(unsigned workers = 0);

    /** Drains remaining jobs, then joins all workers. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** Enqueue one job. Never blocks. */
    void submit(Job job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception (and clears it, leaving
     * the pool reusable).
     */
    void wait();

    /** Number of worker threads. */
    unsigned workers() const { return unsigned(queues.size()); }

    /** Jobs submitted but not yet finished (approximate while running). */
    size_t pending() const;

    /**
     * The worker count requested by the environment: DLP_JOBS if set
     * and positive (capped at 256), else 1. DLP_JOBS=0 means "one per
     * hardware thread".
     */
    static unsigned defaultWorkers();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Job> jobs;
    };

    void workerLoop(unsigned self);
    bool popLocal(unsigned self, Job &job);
    bool stealRemote(unsigned self, Job &job);

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> threads;

    /// Guards submission round-robin cursor, unfinished count, idle
    /// bookkeeping and the captured exception.
    mutable std::mutex poolMutex;
    std::condition_variable workCv;  ///< signaled on submit / shutdown
    std::condition_variable idleCv;  ///< signaled when unfinished hits 0
    size_t unfinished = 0;  ///< submitted, not yet completed
    size_t queuedJobs = 0;  ///< sitting in a deque, not yet picked up
    unsigned nextQueue = 0;
    bool stopping = false;
    std::exception_ptr firstError;
};

/**
 * Run fn(0..n-1) on the pool and wait. Convenience for flat sweeps;
 * exceptions propagate per JobPool::wait().
 */
void parallelFor(JobPool &pool, size_t n,
                 const std::function<void(size_t)> &fn);

} // namespace dlp::driver

#endif // DLP_DRIVER_JOB_POOL_HH
