#include "arch/configs.hh"

#include "common/logging.hh"

namespace dlp::arch {

using core::MachineParams;

namespace {

MachineParams
base()
{
    MachineParams p;
    p.name = "baseline";
    return p;
}

} // namespace

MachineParams
baselineConfig()
{
    return base();
}

MachineParams
sConfig()
{
    MachineParams p = base();
    p.name = "S";
    p.mech.smc = true;
    p.mech.instRevitalize = true;
    return p;
}

MachineParams
soConfig()
{
    MachineParams p = sConfig();
    p.name = "S-O";
    p.mech.operandRevitalize = true;
    return p;
}

MachineParams
sodConfig()
{
    MachineParams p = soConfig();
    p.name = "S-O-D";
    p.mech.l0DataStore = true;
    return p;
}

MachineParams
mConfig()
{
    MachineParams p = base();
    p.name = "M";
    p.mech.smc = true;
    p.mech.localPC = true;
    return p;
}

MachineParams
mdConfig()
{
    MachineParams p = mConfig();
    p.name = "M-D";
    p.mech.l0DataStore = true;
    return p;
}

MachineParams
configByName(const std::string &name)
{
    if (name == "baseline")
        return baselineConfig();
    if (name == "S")
        return sConfig();
    if (name == "S-O")
        return soConfig();
    if (name == "S-O-D")
        return sodConfig();
    if (name == "M")
        return mConfig();
    if (name == "M-D")
        return mdConfig();
    fatal("unknown machine configuration '%s'", name.c_str());
}

const std::vector<std::string> &
allConfigNames()
{
    static const std::vector<std::string> names = {
        "baseline", "S", "S-O", "S-O-D", "M", "M-D"};
    return names;
}

} // namespace dlp::arch
