file(REMOVE_RECURSE
  "CMakeFiles/dlp_ref.dir/blowfish.cc.o"
  "CMakeFiles/dlp_ref.dir/blowfish.cc.o.d"
  "CMakeFiles/dlp_ref.dir/dsp.cc.o"
  "CMakeFiles/dlp_ref.dir/dsp.cc.o.d"
  "CMakeFiles/dlp_ref.dir/fft.cc.o"
  "CMakeFiles/dlp_ref.dir/fft.cc.o.d"
  "CMakeFiles/dlp_ref.dir/linalg.cc.o"
  "CMakeFiles/dlp_ref.dir/linalg.cc.o.d"
  "CMakeFiles/dlp_ref.dir/md5.cc.o"
  "CMakeFiles/dlp_ref.dir/md5.cc.o.d"
  "CMakeFiles/dlp_ref.dir/pi_digits.cc.o"
  "CMakeFiles/dlp_ref.dir/pi_digits.cc.o.d"
  "CMakeFiles/dlp_ref.dir/rijndael.cc.o"
  "CMakeFiles/dlp_ref.dir/rijndael.cc.o.d"
  "CMakeFiles/dlp_ref.dir/shading.cc.o"
  "CMakeFiles/dlp_ref.dir/shading.cc.o.d"
  "CMakeFiles/dlp_ref.dir/texture.cc.o"
  "CMakeFiles/dlp_ref.dir/texture.cc.o.d"
  "libdlp_ref.a"
  "libdlp_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
