# Empty compiler generated dependencies file for encrypt_stream.
# This may be replaced when dependencies are built.
