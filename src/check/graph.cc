#include "check/graph.hh"

#include <algorithm>

namespace dlp::check {

using isa::MappedBlock;
using isa::MappedInst;
using isa::Op;

std::optional<ProducerRef>
BlockGraph::producerOf(uint32_t inst, unsigned slot) const
{
    if (inst >= producers.size() || slot >= producers[inst].size())
        return std::nullopt;
    const auto &list = producers[inst][slot];
    if (list.size() != 1)
        return std::nullopt;
    return list.front();
}

BlockGraph
buildGraph(const MappedBlock &block)
{
    BlockGraph g;
    g.block = &block;
    const size_t n = block.insts.size();
    g.producers.resize(n);
    for (size_t i = 0; i < n; ++i)
        g.producers[i].resize(isa::maxSrcs);
    g.succ.resize(n);

    for (size_t i = 0; i < n; ++i) {
        for (const auto &t : block.insts[i].targets) {
            if (t.inst >= n || t.srcSlot >= isa::maxSrcs ||
                t.srcSlot >= block.insts[t.inst].numSrcs) {
                g.sound = false;
                continue;
            }
            g.producers[t.inst][t.srcSlot].push_back(
                {uint32_t(i), t.wordIdx});
            g.succ[i].push_back(t.inst);
        }
        auto &s = g.succ[i];
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }

    // Iterative Tarjan SCC; components in reverse topological order.
    struct NodeState
    {
        uint32_t index = 0;
        uint32_t lowlink = 0;
        bool visited = false;
        bool onStack = false;
    };
    std::vector<NodeState> st(n);
    std::vector<uint32_t> stack;
    std::vector<std::vector<uint32_t>> components;
    uint32_t next = 0;

    struct Frame
    {
        uint32_t node;
        size_t edge;
    };
    std::vector<Frame> dfs;
    for (uint32_t root = 0; root < n; ++root) {
        if (st[root].visited)
            continue;
        dfs.push_back({root, 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            NodeState &ns = st[f.node];
            if (f.edge == 0) {
                ns.visited = true;
                ns.index = ns.lowlink = next++;
                ns.onStack = true;
                stack.push_back(f.node);
            }
            bool descended = false;
            while (f.edge < g.succ[f.node].size()) {
                uint32_t w = g.succ[f.node][f.edge++];
                if (!st[w].visited) {
                    dfs.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (st[w].onStack)
                    ns.lowlink = std::min(ns.lowlink, st[w].index);
            }
            if (descended)
                continue;
            if (ns.lowlink == ns.index) {
                std::vector<uint32_t> comp;
                uint32_t w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    st[w].onStack = false;
                    comp.push_back(w);
                } while (w != f.node);
                std::sort(comp.begin(), comp.end());
                components.push_back(std::move(comp));
            }
            uint32_t done = f.node;
            dfs.pop_back();
            if (!dfs.empty()) {
                NodeState &parent = st[dfs.back().node];
                parent.lowlink =
                    std::min(parent.lowlink, st[done].lowlink);
            }
        }
    }

    for (auto &comp : components) {
        bool selfLoop = false;
        if (comp.size() == 1) {
            const auto &s = g.succ[comp.front()];
            selfLoop =
                std::binary_search(s.begin(), s.end(), comp.front());
        }
        if (comp.size() > 1 || selfLoop)
            g.cycles.push_back(std::move(comp));
    }

    if (g.cycles.empty()) {
        // Tarjan emits components in reverse topological order; with
        // every component a single node, reversing them is a topo sort.
        g.topo.reserve(n);
        for (auto it = components.rbegin(); it != components.rend(); ++it)
            g.topo.push_back(it->front());
    }
    return g;
}

Reachability::Reachability(const BlockGraph &g)
{
    const size_t n = g.succ.size();
    const size_t words = (n + 63) / 64;
    bits.assign(n, std::vector<uint64_t>(words, 0));
    // Sweep in reverse topological order: a node reaches its successors
    // and everything they reach.
    for (auto it = g.topo.rbegin(); it != g.topo.rend(); ++it) {
        uint32_t i = *it;
        for (uint32_t s : g.succ[i]) {
            bits[i][s >> 6] |= uint64_t(1) << (s & 63);
            for (size_t w = 0; w < words; ++w)
                bits[i][w] |= bits[s][w];
        }
    }
}

namespace {

LinForm
linConst(int64_t v)
{
    LinForm f;
    f.known = true;
    f.c = v;
    return f;
}

LinForm
linAtom(uint64_t atom)
{
    LinForm f;
    f.known = true;
    f.terms = {{atom, 1}};
    return f;
}

LinForm
linCombine(const LinForm &a, const LinForm &b, int64_t sign)
{
    if (!a.known || !b.known)
        return {};
    LinForm out;
    out.known = true;
    out.c = a.c + sign * b.c;
    size_t i = 0, j = 0;
    while (i < a.terms.size() || j < b.terms.size()) {
        if (j == b.terms.size() ||
            (i < a.terms.size() && a.terms[i].first < b.terms[j].first)) {
            out.terms.push_back(a.terms[i++]);
        } else if (i == a.terms.size() ||
                   b.terms[j].first < a.terms[i].first) {
            out.terms.emplace_back(b.terms[j].first,
                                   sign * b.terms[j].second);
            ++j;
        } else {
            int64_t coeff = a.terms[i].second + sign * b.terms[j].second;
            if (coeff != 0)
                out.terms.emplace_back(a.terms[i].first, coeff);
            ++i;
            ++j;
        }
    }
    return out;
}

LinForm
linScale(const LinForm &a, int64_t k)
{
    if (!a.known)
        return {};
    if (k == 0)
        return linConst(0);
    LinForm out = a;
    out.c *= k;
    for (auto &t : out.terms)
        t.second *= k;
    return out;
}

/** Ops safe to hand to evalOp for constant folding. */
bool
foldable(Op op)
{
    switch (op) {
      case Op::Mov: case Op::Movi: case Op::Sel:
      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::And: case Op::Or: case Op::Xor: case Op::Not:
      case Op::Shl: case Op::Shr: case Op::Sar:
      case Op::Add32: case Op::Sub32: case Op::Mul32: case Op::Not32:
      case Op::Shl32: case Op::Shr32: case Op::Rotl32: case Op::Rotr32:
      case Op::Eq: case Op::Ne: case Op::Lt: case Op::Le:
      case Op::Ltu: case Op::Leu:
        return true;
      default:
        return false;
    }
}

} // namespace

std::vector<LinForm>
linearValues(const BlockGraph &g)
{
    const MappedBlock &b = *g.block;
    std::vector<LinForm> val(b.insts.size());

    auto atomOf = [](const ProducerRef &p) {
        return uint64_t(p.inst) * 256 + p.wordIdx;
    };

    for (uint32_t i : g.topo) {
        const MappedInst &mi = b.insts[i];

        // Dataflow operand s as a linear form; a multi-word (Lmw)
        // result is opaque per word.
        auto operand = [&](unsigned s) -> LinForm {
            auto p = g.producerOf(i, s);
            if (!p)
                return {};
            if (b.insts[p->inst].op == Op::Lmw || p->wordIdx != 0)
                return linAtom(atomOf(*p));
            return val[p->inst];
        };

        LinForm self = linAtom(uint64_t(i) * 256);
        unsigned arity = isa::opInfo(mi.op).numSrcs;

        if (!foldable(mi.op) ||
            arity > unsigned(mi.numSrcs) + (mi.immB ? 1u : 0u)) {
            val[i] = self;
            continue;
        }

        LinForm a = arity >= 1 ? operand(0) : linConst(0);
        LinForm bb = mi.immB
                         ? linConst(int64_t(mi.imm))
                         : (arity >= 2 ? operand(1) : linConst(0));
        LinForm cc = arity >= 3 ? operand(2) : linConst(0);

        bool allConst = a.isConst() && bb.isConst() && cc.isConst();
        if (mi.op == Op::Movi) {
            val[i] = linConst(int64_t(mi.imm));
        } else if (allConst) {
            val[i] = linConst(int64_t(
                isa::evalOp(mi.op, Word(a.c), Word(bb.c), Word(cc.c),
                            mi.imm)));
        } else {
            switch (mi.op) {
              case Op::Mov:
                val[i] = a;
                break;
              case Op::Add:
                val[i] = linCombine(a, bb, 1);
                break;
              case Op::Sub:
                val[i] = linCombine(a, bb, -1);
                break;
              case Op::Shl:
                val[i] = bb.isConst() && bb.c >= 0 && bb.c < 63
                             ? linScale(a, int64_t(1) << bb.c)
                             : self;
                break;
              case Op::Mul:
                if (bb.isConst())
                    val[i] = linScale(a, bb.c);
                else if (a.isConst())
                    val[i] = linScale(bb, a.c);
                else
                    val[i] = self;
                break;
              default:
                val[i] = self;
                break;
            }
            if (!val[i].known)
                val[i] = self;
        }
    }
    return val;
}

} // namespace dlp::check
