file(REMOVE_RECURSE
  "CMakeFiles/test_noc_mem.dir/test_noc_mem.cpp.o"
  "CMakeFiles/test_noc_mem.dir/test_noc_mem.cpp.o.d"
  "test_noc_mem"
  "test_noc_mem.pdb"
  "test_noc_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
