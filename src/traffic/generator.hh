/**
 * @file
 * Open-loop request traffic for the multi-core serving experiments.
 *
 * A TrafficParams describes an arrival process (requests per second,
 * total request count, arrival discipline) and a per-request kernel mix
 * drawn from the Table-1 catalog. generate() expands it into a concrete,
 * fully deterministic arrival schedule: every request carries its
 * arrival tick, the kernel it runs and the dataset-seed slot it reads.
 *
 * Open-loop means arrivals never wait for service: the schedule is
 * fixed up front from the seed alone, so an overloaded system builds a
 * queue instead of silently throttling the offered load — which is what
 * makes sustained-throughput and tail-latency measurements honest
 * (closed-loop generators suffer coordinated omission).
 *
 * Determinism note: the "poisson" discipline needs -ln(U) for its
 * exponential interarrivals. std::log is not guaranteed to round
 * identically across libm versions, so interarrival sampling uses an
 * in-repo polynomial log (plain IEEE +,*,/ only) — schedules are
 * bit-identical on every platform, which the CI golden bit-diff relies
 * on.
 */

#ifndef DLP_TRAFFIC_GENERATOR_HH
#define DLP_TRAFFIC_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dlp::traffic {

/** One entry of the per-request kernel mix. */
struct MixEntry
{
    std::string kernel;   ///< Table-1 catalog name
    uint64_t weight = 1;  ///< relative draw weight (must be nonzero)
};

/** How interarrival gaps are drawn. */
enum class Arrival : uint8_t
{
    Uniform,  ///< mean gap with +/-50% seeded jitter
    Poisson,  ///< exponential gaps (memoryless arrivals)
};

struct TrafficParams
{
    double rps = 1000.0;        ///< offered load, requests per second
    uint64_t requests = 256;    ///< total requests to inject
    uint64_t batch = 256;       ///< records per request (problem scale)
    uint64_t seed = 1;          ///< schedule + dataset-slot seed
    uint64_t seedPool = 2;      ///< distinct dataset seeds cycled per kernel
    double ticksPerSec = 1e9;   ///< simulated ticks in one wall second
    Arrival arrival = Arrival::Uniform;
    std::vector<MixEntry> mix;  ///< kernel draw table (non-empty)
};

/** Parse/format the arrival discipline name ("uniform", "poisson"). */
Arrival arrivalByName(const std::string &name);
const char *arrivalName(Arrival a);

/**
 * Parse a "--mix" spec: comma-separated kernel[:weight] entries, e.g.
 * "convert:4,md5:2,fft". FatalError on malformed entries or zero
 * weights (kernel names are validated by the profile sweep later).
 */
std::vector<MixEntry> parseMix(const std::string &spec);

/** One request of the generated schedule. */
struct Request
{
    uint64_t index = 0;    ///< injection order
    Tick arrival = 0;      ///< arrival tick (non-decreasing)
    uint32_t mixIndex = 0; ///< which MixEntry the kernel was drawn from
    uint32_t seedSlot = 0; ///< dataset-seed slot in [0, seedPool)
};

/**
 * Expand params into the concrete arrival schedule: requests in
 * injection order with non-decreasing arrival ticks. Same params =>
 * bit-identical schedule. Fatal on an empty mix, zero rps or zero
 * weights.
 */
std::vector<Request> generate(const TrafficParams &params);

/**
 * Deterministic natural log for the exponential sampler: frexp range
 * reduction + atanh series, IEEE +,*,/ only, ~1e-14 relative accuracy
 * over (0, 1]. Exposed for the unit tests.
 */
double detLog(double x);

} // namespace dlp::traffic

#endif // DLP_TRAFFIC_GENERATOR_HH
