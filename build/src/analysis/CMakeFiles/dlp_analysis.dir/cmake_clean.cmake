file(REMOVE_RECURSE
  "CMakeFiles/dlp_analysis.dir/attributes.cc.o"
  "CMakeFiles/dlp_analysis.dir/attributes.cc.o.d"
  "CMakeFiles/dlp_analysis.dir/experiments.cc.o"
  "CMakeFiles/dlp_analysis.dir/experiments.cc.o.d"
  "CMakeFiles/dlp_analysis.dir/report.cc.o"
  "CMakeFiles/dlp_analysis.dir/report.cc.o.d"
  "libdlp_analysis.a"
  "libdlp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
