file(REMOVE_RECURSE
  "CMakeFiles/dlp_common.dir/logging.cc.o"
  "CMakeFiles/dlp_common.dir/logging.cc.o.d"
  "CMakeFiles/dlp_common.dir/stats.cc.o"
  "CMakeFiles/dlp_common.dir/stats.cc.o.d"
  "libdlp_common.a"
  "libdlp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
