/**
 * @file
 * Tests for the parallel sweep driver: JobPool lifecycle, work
 * distribution and exception propagation; the result cache; and the
 * headline guarantee — a parallel grid is field-for-field identical
 * to the serial grid.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/experiments.hh"
#include "arch/configs.hh"
#include "common/logging.hh"
#include "core/block_engine.hh"
#include "driver/job_pool.hh"
#include "driver/sweep.hh"
#include "sched/plan.hh"

using namespace dlp;
using namespace dlp::driver;

// ---------------------------------------------------------------------
// JobPool
// ---------------------------------------------------------------------

TEST(JobPool, StartsAndStopsIdle)
{
    JobPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    EXPECT_EQ(pool.pending(), 0u);
    // Destructor joins an idle pool without deadlock.
}

TEST(JobPool, RunsEveryJobExactlyOnce)
{
    constexpr size_t n = 500;
    std::vector<std::atomic<int>> runs(n);
    {
        JobPool pool(8);
        for (size_t i = 0; i < n; ++i)
            pool.submit([&runs, i] { runs[i].fetch_add(1); });
        pool.wait();
    }
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "job " << i;
}

TEST(JobPool, WaitIsReusableAcrossBatches)
{
    JobPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 4; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
        EXPECT_EQ(pool.pending(), 0u);
    }
}

TEST(JobPool, ParallelForCoversRange)
{
    JobPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    parallelFor(pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(JobPool, FirstExceptionPropagatesFromWait)
{
    JobPool pool(4);
    std::atomic<int> survivors{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&survivors, i] {
            if (i == 7)
                throw std::runtime_error("job seven failed");
            survivors.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool remains usable and a clean batch
    // waits without throwing.
    EXPECT_EQ(survivors.load(), 19);
    pool.submit([&survivors] { survivors.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(survivors.load(), 20);
}

TEST(JobPool, SingleWorkerStillCompletes)
{
    JobPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 25; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 25);
}

TEST(JobPool, DefaultWorkersReadsEnvironment)
{
    const char *saved = std::getenv("DLP_JOBS");
    std::string savedCopy = saved ? saved : "";

    unsetenv("DLP_JOBS");
    EXPECT_EQ(JobPool::defaultWorkers(), 1u);
    setenv("DLP_JOBS", "6", 1);
    EXPECT_EQ(JobPool::defaultWorkers(), 6u);
    setenv("DLP_JOBS", "0", 1); // one per hardware thread
    EXPECT_GE(JobPool::defaultWorkers(), 1u);
    setenv("DLP_JOBS", "banana", 1);
    EXPECT_EQ(JobPool::defaultWorkers(), 1u);

    if (saved)
        setenv("DLP_JOBS", savedCopy.c_str(), 1);
    else
        unsetenv("DLP_JOBS");
}

// ---------------------------------------------------------------------
// Sweep planning and the result cache
// ---------------------------------------------------------------------

TEST(Sweep, PlanGridIsCrossProductInOrder)
{
    SweepPlan plan;
    plan.addGrid({"fft", "lu"}, {"baseline", "S"}, 4, 9);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.tasks[0].kernel, "fft");
    EXPECT_EQ(plan.tasks[0].config, "baseline");
    EXPECT_EQ(plan.tasks[1].kernel, "fft");
    EXPECT_EQ(plan.tasks[1].config, "S");
    EXPECT_EQ(plan.tasks[3].kernel, "lu");
    EXPECT_EQ(plan.tasks[3].config, "S");
    EXPECT_EQ(plan.tasks[2].scaleDiv, 4u);
    EXPECT_EQ(plan.tasks[2].seed, 9u);
}

TEST(Sweep, ScaleForKeepsFftPowerOfTwo)
{
    EXPECT_EQ(scaleFor("fft", 1), 1024u);
    EXPECT_EQ(scaleFor("fft", 8), 128u);
    // Non-power-of-two-sensitive kernels floor at 16.
    EXPECT_EQ(scaleFor("lu", 1000), 16u);
}

TEST(Sweep, CacheHitsOnRepeatAndMissesWhenCold)
{
    clearResultCache();
    SweepPlan plan;
    plan.add("convert", "baseline", 64, 7);
    plan.add("convert", "S", 64, 7);

    SweepOptions opts;
    opts.jobs = 1;
    auto first = runSweep(plan, opts);
    EXPECT_EQ(resultCacheMisses(), 2u);
    EXPECT_EQ(resultCacheHits(), 0u);
    EXPECT_EQ(resultCacheSize(), 2u);

    auto second = runSweep(plan, opts);
    EXPECT_EQ(resultCacheMisses(), 2u);
    EXPECT_EQ(resultCacheHits(), 2u);
    ASSERT_EQ(second.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(second[i].cycles, first[i].cycles);

    // A different seed is a different key: miss.
    SweepPlan other;
    other.add("convert", "baseline", 64, 8);
    runSweep(other, opts);
    EXPECT_EQ(resultCacheMisses(), 3u);
    EXPECT_EQ(resultCacheSize(), 3u);

    // useCache = false bypasses lookup and store entirely.
    clearResultCache();
    SweepOptions noCache;
    noCache.jobs = 1;
    noCache.useCache = false;
    runSweep(plan, noCache);
    EXPECT_EQ(resultCacheSize(), 0u);
    EXPECT_EQ(resultCacheHits(), 0u);
    clearResultCache();
}

TEST(Sweep, CacheCountersConserveCells)
{
    // The conservation law behind the exported "store" object: every
    // cell of every sweep lands in exactly one counter, so across any
    // sequence of sweeps hits + misses == cells swept. Exercise the
    // law over a mix of cold, warm, duplicated and cache-bypassed
    // plans.
    clearResultCache();
    uint64_t cells = 0;
    SweepOptions opts;
    opts.jobs = 1;

    SweepPlan cold;
    cold.add("dct", "baseline", 64, 11);
    cold.add("dct", "S", 64, 11);
    runSweep(cold, opts);
    cells += cold.size();

    runSweep(cold, opts);  // fully warm
    cells += cold.size();

    SweepPlan duplicated;  // same cell twice in one plan, plus a warm one
    duplicated.add("dct", "M", 64, 11);
    duplicated.add("dct", "M", 64, 11);
    duplicated.add("dct", "baseline", 64, 11);
    runSweep(duplicated, opts);
    cells += duplicated.size();

    SweepOptions noCache;
    noCache.jobs = 1;
    noCache.useCache = false;  // bypassed lookups still count as misses
    runSweep(cold, noCache);
    cells += cold.size();

    EXPECT_EQ(resultCacheHits() + resultCacheMisses(), cells);
    clearResultCache();
}

TEST(Sweep, ProgressReportsEveryTaskAndCachedFlag)
{
    clearResultCache();
    SweepPlan plan;
    plan.add("md5", "baseline", 64, 3);
    plan.add("md5", "M", 64, 3);

    size_t calls = 0, cachedCalls = 0, lastDone = 0;
    SweepOptions opts;
    opts.jobs = 2;
    opts.progress = [&](const SweepProgress &p) {
        ++calls;
        if (p.cached)
            ++cachedCalls;
        EXPECT_EQ(p.total, 2u);
        EXPECT_GT(p.done, lastDone);
        lastDone = p.done;
    };
    runSweep(plan, opts);
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(cachedCalls, 0u);

    calls = cachedCalls = lastDone = 0;
    runSweep(plan, opts);
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(cachedCalls, 2u);
    clearResultCache();
}

TEST(Sweep, VerificationFailurePropagatesFromWorkers)
{
    clearResultCache();
    SweepPlan plan;
    plan.add("no-such-kernel", "baseline", 64, 1);
    SweepOptions opts;
    opts.jobs = 4;
    EXPECT_THROW(runSweep(plan, opts), FatalError);
    clearResultCache();
}

// ---------------------------------------------------------------------
// Determinism: serial grid == parallel grid, field for field
// ---------------------------------------------------------------------

namespace {

void
expectSameSnapshot(const GroupSnapshot &a, const GroupSnapshot &b,
                   const std::string &ctx)
{
    EXPECT_EQ(a.name, b.name) << ctx;
    EXPECT_EQ(a.scalars, b.scalars) << ctx << " " << a.name;
    EXPECT_EQ(a.formulas, b.formulas) << ctx << " " << a.name;

    ASSERT_EQ(a.vectors.size(), b.vectors.size()) << ctx << " " << a.name;
    for (const auto &[name, va] : a.vectors) {
        auto it = b.vectors.find(name);
        ASSERT_NE(it, b.vectors.end()) << ctx << " vector " << name;
        EXPECT_EQ(va.all(), it->second.all()) << ctx << " vector " << name;
    }

    ASSERT_EQ(a.distributions.size(), b.distributions.size())
        << ctx << " " << a.name;
    for (const auto &[name, da] : a.distributions) {
        auto it = b.distributions.find(name);
        ASSERT_NE(it, b.distributions.end()) << ctx << " dist " << name;
        const auto &db = it->second;
        EXPECT_EQ(da.samples(), db.samples()) << ctx << " dist " << name;
        EXPECT_EQ(da.sum(), db.sum()) << ctx << " dist " << name;
        EXPECT_EQ(da.minValue(), db.minValue()) << ctx << " dist " << name;
        EXPECT_EQ(da.maxValue(), db.maxValue()) << ctx << " dist " << name;
        EXPECT_EQ(da.underflow(), db.underflow()) << ctx << " dist " << name;
        EXPECT_EQ(da.overflow(), db.overflow()) << ctx << " dist " << name;
        ASSERT_EQ(da.numBuckets(), db.numBuckets()) << ctx << " " << name;
        for (size_t i = 0; i < da.numBuckets(); ++i)
            EXPECT_EQ(da.bucket(i), db.bucket(i))
                << ctx << " dist " << name << " bucket " << i;
    }
}

void
expectSameResult(const arch::ExperimentResult &a,
                 const arch::ExperimentResult &b)
{
    std::string ctx = a.kernel + "/" + a.config;
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.verified, b.verified) << ctx;
    EXPECT_EQ(a.error, b.error) << ctx;
    EXPECT_EQ(a.cycles, b.cycles) << ctx;
    EXPECT_EQ(a.usefulOps, b.usefulOps) << ctx;
    EXPECT_EQ(a.instsExecuted, b.instsExecuted) << ctx;
    EXPECT_EQ(a.records, b.records) << ctx;
    EXPECT_EQ(a.activations, b.activations) << ctx;
    EXPECT_EQ(a.mappings, b.mappings) << ctx;
    ASSERT_EQ(a.statGroups.size(), b.statGroups.size()) << ctx;
    for (size_t g = 0; g < a.statGroups.size(); ++g)
        expectSameSnapshot(a.statGroups[g], b.statGroups[g], ctx);
}

} // namespace

TEST(Determinism, ParallelGridMatchesSerialFieldForField)
{
    constexpr uint64_t scaleDiv = 16;

    clearResultCache();
    analysis::Grid serial = analysis::runGrid(scaleDiv);

    // Flush the cache so the parallel run actually simulates instead
    // of copying the serial results back out.
    clearResultCache();
    analysis::Grid parallel =
        analysis::runGridParallel(scaleDiv, 1234, 8);
    clearResultCache();

    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[kernel, byConfig] : serial) {
        auto pk = parallel.find(kernel);
        ASSERT_NE(pk, parallel.end()) << kernel;
        ASSERT_EQ(byConfig.size(), pk->second.size()) << kernel;
        for (const auto &[config, result] : byConfig) {
            auto pc = pk->second.find(config);
            ASSERT_NE(pc, pk->second.end()) << kernel << "/" << config;
            expectSameResult(result, pc->second);
        }
    }
}

// ---------------------------------------------------------------------
// Engine reuse across sweep cells
// ---------------------------------------------------------------------

namespace {

/** A one-block plan: r10 = 7 + 8 per activation (see test_engines). */
sched::SimdPlan
streakPlan(const core::MachineParams &m)
{
    using isa::MappedInst;
    using isa::Op;
    using isa::Target;
    auto inst = [](Op op, unsigned row, unsigned col, unsigned slot) {
        MappedInst mi;
        mi.op = op;
        mi.row = static_cast<uint8_t>(row);
        mi.col = static_cast<uint8_t>(col);
        mi.slot = static_cast<uint8_t>(slot);
        mi.numSrcs = isa::opInfo(op).numSrcs;
        return mi;
    };

    sched::SimdPlan plan;
    plan.name = "streak";
    plan.unroll = 1;
    plan.recBaseReg = 0;
    plan.initialRegs = {{0, 0}};

    sched::Segment seg;
    auto &b = seg.block;
    b.name = "streak#0";
    b.rows = static_cast<uint8_t>(m.rows);
    b.cols = static_cast<uint8_t>(m.cols);
    b.slotsPerTile = static_cast<uint8_t>(m.frameSlots);

    MappedInst a = inst(Op::Movi, 1, 1, 0);
    a.imm = 7;
    a.overhead = true;
    a.targets.push_back(Target{2, 0, 0});
    MappedInst c = inst(Op::Movi, 2, 3, 0);
    c.imm = 8;
    c.overhead = true;
    c.targets.push_back(Target{2, 1, 0});
    MappedInst add = inst(Op::Add, 1, 2, 0);
    add.targets.push_back(Target{3, 0, 0});
    MappedInst wr = inst(Op::Write, 0, 0, 0);
    wr.imm = 10;
    wr.regTile = true;
    wr.overhead = true;
    b.insts = {a, c, add, wr};
    b.validate();
    plan.segments.push_back(std::move(seg));
    return plan;
}

} // namespace

TEST(Determinism, EngineResetsSignatureStreakBetweenRuns)
{
    // Sweep fixtures reuse one engine across runs; a streak (or last
    // signature) leaking from the previous run would let the second
    // run's epoch controller arm early and diverge from a cold engine.
    auto m = arch::configByName("S");
    mem::MemorySystem memory(m.memParams, true);
    core::BlockEngine engine(m, memory);
    auto plan = streakPlan(m);

    engine.run(plan, 24);
    EXPECT_GT(engine.steadySignatureStreak() + engine.ffIterations(), 0u);

    // A zero-record run executes no activations: the streak state must
    // still have been cleared at entry.
    engine.run(plan, 0);
    EXPECT_EQ(engine.activationSignature(), 0u);
    EXPECT_EQ(engine.steadySignatureStreak(), 0u);
}
