#include "core/block_engine.hh"

#include <algorithm>
#include <cinttypes>

#include "common/bitutils.hh"
#include "common/trace.hh"
#include "isa/disasm.hh"

namespace dlp::core {

using isa::MappedBlock;
using isa::MappedInst;
using isa::MemSpace;
using isa::Op;

BlockEngine::BlockEngine(const MachineParams &params,
                         mem::MemorySystem &memory)
    : m(params), mem(memory), mesh(params.rows, params.cols, params.hopTicks),
      rf(params.numRegs, 0),
      issuePorts(params.tiles(), sim::Resource(ticksPerCycle)),
      divPorts(params.tiles(),
               sim::Resource(cyclesToTicks(isa::opInfo(Op::Fdiv).latency))),
      injectPorts(params.tiles(), sim::Resource(params.injectInterval)),
      l0Ports(params.tiles(), sim::Resource(ticksPerCycle)),
      regRead(params.regBanks, sim::Resource(ticksPerCycle)),
      regWrite(params.regBanks, sim::Resource(ticksPerCycle))
{
    // The structural resources whose occupancy sets the activation
    // initiation interval when iterations pipeline across frames.
    auto trackSet = [this](std::vector<sim::Resource> &set,
                           const char *name) {
        for (auto &r : set) {
            tracked.push_back(&r);
            trackedName.push_back(name);
        }
    };
    trackSet(issuePorts, "issue");
    trackSet(divPorts, "div");
    trackSet(injectPorts, "inject");
    trackSet(l0Ports, "l0");
    trackSet(regRead, "regRead");
    trackSet(regWrite, "regWrite");
    trackSet(mem.smc().bankPortResources(), "smcBank");
    trackSet(mem.smc().storeBufResources(), "storeBuf");
    trackSet(mem.l1().portResources(), "l1");
    trackSet(mem.l2().portResources(), "l2");
    trackSet(mem.smc().channelResources(), "channel");
    mesh.forEachLink([this](sim::Resource &r) {
        tracked.push_back(&r);
        trackedName.push_back("link");
    });
    grantSnapshot.assign(tracked.size(), 0);

    // One reusable event seeds every activation (bound once here; the
    // per-activation context travels through members, not captures).
    seedEvent.bind(eq, [this] { seedActivation(); });

    // Issue width is bounded by the tile count; operand waits beyond a
    // couple hundred ticks all mean "starved" and land in overflow.
    issueWidth = &engStats.distribution("issueWidth", 0.0,
                                        double(m.tiles()), 16);
    operandWait = &engStats.distribution("operandWaitTicks", 0.0, 128.0,
                                         16);
    activationsStat = &engStats.scalar("activations");
    revitalizesStat = &engStats.scalar("revitalizes");
    signatureRepeatsStat = &engStats.scalar("signatureRepeats");

    // Lifetime event-queue counters, surfaced so the post-run auditor
    // can check the conservation law scheduled == executed + pending +
    // discarded (and that a completed run drains the queue).
    engStats.formula("eventsScheduled",
                     [this] { return double(eq.scheduledEvents()); });
    engStats.formula("eventsExecuted",
                     [this] { return double(eq.executedEvents()); });
    engStats.formula("eventsPending",
                     [this] { return double(eq.pending()); });
    engStats.formula("eventsDiscarded",
                     [this] { return double(eq.discardedEvents()); });
}

void
BlockEngine::snapshotGrants()
{
    for (size_t i = 0; i < tracked.size(); ++i)
        grantSnapshot[i] = tracked[i]->grants();
}

Tick
BlockEngine::busySinceSnapshot() const
{
    Tick worst = 0;
    size_t argmax = 0;
    for (size_t i = 0; i < tracked.size(); ++i) {
        Tick busy = (tracked[i]->grants() - grantSnapshot[i]) *
                    tracked[i]->interval();
        if (busy > worst) {
            worst = busy;
            argmax = i;
        }
    }
    if (worst > 0) {
        DPRINTF(Engine, "II bottleneck: %s[%zu] busy=%" PRIu64 " ticks",
                trackedName[argmax], argmax, worst);
    }
    return worst;
}

void
BlockEngine::setTables(const std::vector<kernels::Table> *kernelTables)
{
    tables = kernelTables;
    tableByteBase.clear();
    Addr base = tableRegionBase;
    if (tables) {
        for (const auto &t : *tables) {
            tableByteBase.push_back(base);
            base += t.data.size() * wordBytes;
        }
    }
}

RunStats
BlockEngine::run(const sched::SimdPlan &plan, uint64_t numRecords)
{
    RunStats stats;
    Tick t = curTick;

    // Setup block: write the initial register values (constants,
    // induction registers) through the register-file ports, and load the
    // L0 data stores / table region.
    for (const auto &init : plan.initialRegs)
        rf.at(init.first) = init.second;
    t += cyclesToTicks(
        divCeil(std::max<size_t>(plan.initialRegs.size(), 1), m.regBanks) +
        m.mapOverhead);
    if (tables && !tables->empty()) {
        uint64_t tableWords = 0;
        for (const auto &tab : *tables)
            tableWords += tab.data.size();
        // Broadcast the tables into the L0 stores (or prime the cached
        // region): bandwidth-limited copy.
        t += cyclesToTicks(
            divCeil(tableWords, m.memParams.smcWordsPerCycle));
    }

    uint64_t groups = divCeil(numRecords, plan.unroll);
    stats.groups = groups;

    // Successive activations pipeline: a new activation begins once the
    // previous one's instructions have all *issued* (their reservation
    // stations are free for revitalized re-use -- the S-morph maps
    // iterations into spare frames) and its register writes have
    // committed (the next iteration's Reads depend on them), plus the
    // revitalize broadcast -- or a full re-map on machines without
    // instruction revitalization. The run as a whole ends when the last
    // activation fully drains.
    Tick drain = t;
    Tick nextStart = t;
    actMaxWrite = t;

    // Run one activation and compute when the next may begin: the
    // initiation interval is the largest resource occupancy of this
    // activation (frames double-buffer, so latency is hidden), floored
    // by the revitalize broadcast -- or by the re-map time on machines
    // without instruction revitalization -- and ordered after this
    // activation's register-write commits (true dependences: loop
    // carries, cross-block temporaries).
    auto paceActivation = [&](const isa::MappedBlock &block, bool first,
                              Tick gapTicks) {
        snapshotGrants();
        runActivation(block, nextStart, first, stats);
        drain = std::max(drain, actMaxTick);
        Tick ii = std::max(busySinceSnapshot(), gapTicks);
        Tick prev = nextStart;
        nextStart = std::max(nextStart + ii, actMaxWrite + gapTicks);
        if (!first) {
            ++*revitalizesStat;
            DPRINTF(Revit,
                    "revitalize %s gap=%" PRIu64 " next at %" PRIu64,
                    block.name.c_str(), gapTicks, nextStart);
            OBS_SIM_SPAN(Revit, "revitalize", prev, gapTicks,
                         signatureStreak);
        }
        DPRINTF(Engine,
                "pace: ii=%" PRIu64 " delta=%" PRIu64 " drainLen=%" PRIu64,
                ii, nextStart - prev, actMaxTick - prev);
        if (sampler)
            sampler->maybeSample(drain);
    };

    if (plan.resident()) {
        const auto &seg = plan.segments[0];
        uint64_t totalActs = groups * seg.activations;
        Tick mapTicks = cyclesToTicks(
            divCeil(seg.block.insts.size(), m.mapBandwidth) + m.mapOverhead);
        Tick gap = m.mech.instRevitalize
                       ? cyclesToTicks(m.revitalizeDelay)
                       : mapTicks;
        nextStart += mapTicks;
        stats.mappings++;
        OBS_SIM_SPAN(Engine, "map", nextStart - mapTicks, mapTicks,
                     seg.block.insts.size());
        for (uint64_t a = 0; a < totalActs; ++a) {
            bool first = a == 0;
            if (!first && !m.mech.instRevitalize) {
                stats.mappings++;
                first = true; // a fresh mapping re-fires everything
            }
            // The sequencer owns the record-group pointer.
            rf.at(plan.recBaseReg) = (a / seg.activations) * plan.unroll;
            paceActivation(seg.block, first, gap);
        }
    } else {
        for (uint64_t g = 0; g < groups; ++g) {
            rf.at(plan.recBaseReg) = g * plan.unroll;
            for (const auto &seg : plan.segments) {
                Tick mapTicks =
                    cyclesToTicks(divCeil(seg.block.insts.size(),
                                          m.mapBandwidth) +
                                  m.mapOverhead);
                Tick gap = m.mech.instRevitalize
                               ? cyclesToTicks(m.revitalizeDelay)
                               : mapTicks;
                // A different block must be fetched and mapped.
                nextStart = std::max(nextStart, actMaxWrite) + mapTicks;
                stats.mappings++;
                OBS_SIM_SPAN(Engine, "map", nextStart - mapTicks, mapTicks,
                             seg.block.insts.size());
                for (uint64_t a = 0; a < seg.activations; ++a) {
                    bool first = a == 0;
                    if (!first && !m.mech.instRevitalize) {
                        stats.mappings++;
                        first = true;
                    }
                    paceActivation(seg.block, first, gap);
                }
            }
        }
    }

    stats.cycles = ticksToCycles(drain - curTick);
    curTick = drain;
    return stats;
}

void
BlockEngine::runActivation(const MappedBlock &block, Tick startTick,
                           bool firstActivation, RunStats &stats)
{
    // (Re)initialize per-instruction state.
    if (firstActivation) {
        state.assign(block.insts.size(), InstState{});
    } else {
        for (size_t i = 0; i < block.insts.size(); ++i) {
            auto &st = state[i];
            st.fired = false;
            st.sawOperand = false;
            const auto &mi = block.insts[i];
            for (unsigned s = 0; s < isa::maxSrcs; ++s) {
                if (!mi.persistent[s])
                    st.present[s] = false;
            }
        }
    }
    DPRINTF(Engine, "activation of %s starts at %" PRIu64 "%s",
            block.name.c_str(), startTick,
            firstActivation ? " (fresh mapping)" : "");

    firedCount = 0;
    expectedCount = 0;
    actMaxTick = startTick;
    actMaxIssue = startTick;
    actMaxWrite = startTick;
    sigHash.reset();

    // Activations may start earlier than the previous activation's last
    // event (frames pipeline); the queue is empty here, so rewinding its
    // clock is safe.
    eq.reset();

    curBlock = &block;
    curStats = &stats;
    seedTick = startTick;
    seedFresh = firstActivation;

    // One event seeds the whole activation. The seeds are the first
    // thing the queue executes, so running them back to back inside one
    // callback is order-identical to scheduling one event per seed:
    // either way every seed fires before any same-tick delivery (those
    // carry later sequence numbers by construction).
    seedEvent.schedule(startTick);

    eq.run();

    panic_if(firedCount != expectedCount,
             "block %s deadlocked: fired %" PRIu64 " of %" PRIu64
             " instructions",
             block.name.c_str(), firedCount, expectedCount);

    // Commit: apply buffered register writes.
    for (const auto &w : pendingWrites)
        rf.at(w.first) = w.second;
    pendingWrites.clear();

    // Sustained issue width of this activation: instructions fired over
    // the issue span (drain excluded -- it overlaps the next activation).
    Cycles span = ticksToCycles(actMaxIssue - startTick) + 1;
    issueWidth->sample(double(firedCount) / double(span));
    ++*activationsStat;

    // Close the occupancy signature with the activation's envelope: two
    // iterations with identical fire schedules but different drain or
    // commit shapes are not the same steady state.
    sigHash.add(actMaxTick - startTick);
    sigHash.add(actMaxIssue - startTick);
    sigHash.add(actMaxWrite - startTick);
    sigHash.add(firedCount);
    uint64_t digest = sigHash.digest();
    if (!firstActivation && digest == lastSignature) {
        ++signatureStreak;
        ++*signatureRepeatsStat;
    } else {
        signatureStreak = 0;
    }
    lastSignature = digest;

    OBS_SIM_SPAN(Engine, "activation", startTick, actMaxTick - startTick,
                 firedCount);
    OBS_SIM_COUNTER(EventQ, "eventsExecuted", actMaxTick,
                    eq.executedEvents());

    stats.activations++;
}

void
BlockEngine::seedActivation()
{
    const MappedBlock &block = *curBlock;
    for (size_t i = 0; i < block.insts.size(); ++i) {
        const auto &mi = block.insts[i];
        if (mi.onceOnly && !seedFresh)
            continue;
        ++expectedCount;
        bool ready = true;
        for (unsigned s = 0; s < mi.numSrcs; ++s)
            ready &= state[i].present[s];
        if (ready)
            execute(block, static_cast<uint32_t>(i), seedTick, *curStats);
    }
}

void
BlockEngine::execute(const MappedBlock &block, uint32_t idx, Tick ready,
                     RunStats &stats)
{
    const MappedInst &mi = block.insts[idx];
    InstState &st = state[idx];
    panic_if(st.fired, "instruction %u of %s fired twice", idx,
             block.name.c_str());
    st.fired = true;
    ++firedCount;
    ++stats.instsExecuted;
    if (!mi.overhead)
        ++stats.usefulOps;

    // Operand-wait skew: how long the first-arriving operand sat in the
    // reservation station before the last one enabled the fire.
    if (st.sawOperand && ready > st.firstOperand)
        operandWait->sample(double(ready - st.firstOperand));
    DPRINTF(Exec, "fire %s at %" PRIu64, isa::disasm(mi).c_str(), ready);
    OBS_SIM_INSTANT(Exec, "fire", ready, idx);

    // Feed the occupancy signature: which instruction fired, how far
    // into the activation. Identical sequences => identical iterations.
    sigHash.add(idx);
    sigHash.add(ready - seedTick);

    Word a = st.operand[0];
    Word b = mi.immB ? mi.imm : st.operand[1];
    Word c = st.operand[2];

    noc::Coord here = tileOf(mi);
    unsigned row = mi.row;
    Tick done;
    st.result.assign(1, Word(0));

    switch (mi.op) {
      case Op::Read: {
        unsigned bank = static_cast<unsigned>(mi.imm) % m.regBanks;
        Tick grant = regRead[bank].acquire(ready);
        actMaxIssue = std::max(actMaxIssue, grant);
        done = grant + cyclesToTicks(m.regLatency) + m.hopTicks;
        st.result[0] = rf.at(static_cast<size_t>(mi.imm));
        break;
      }
      case Op::Write: {
        unsigned bank = static_cast<unsigned>(mi.imm) % m.regBanks;
        Tick grant = regWrite[bank].acquire(ready + m.hopTicks);
        actMaxIssue = std::max(actMaxIssue, grant);
        done = grant + cyclesToTicks(m.regLatency);
        pendingWrites.emplace_back(static_cast<unsigned>(mi.imm), a);
        actMaxTick = std::max(actMaxTick, done);
        actMaxWrite = std::max(actMaxWrite, done);
        return; // no targets
      }
      case Op::Ld: {
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        actMaxIssue = std::max(actMaxIssue, issue);
        Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
        Word value = 0;
        Tick served;
        if (mi.space == MemSpace::Smc) {
            served = mem.streamRead(row, a, 1, atEdge, &value);
            if (m.mech.smc) {
                // The response rides the row's streaming channel.
                done = channelDeliver(row, 0, here, served);
                st.result[0] = value;
                break;
            }
        } else {
            served = mem.cachedRead(row, a, atEdge, value);
        }
        done = mesh.routeFromEdge(row, here, served);
        st.result[0] = value;
        break;
      }
      case Op::Lmw: {
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        actMaxIssue = std::max(actMaxIssue, issue);
        Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
        st.result.assign(mi.lmwCount, Word(0));
        Tick served = mem.streamRead(row, a, mi.lmwCount, atEdge,
                                     st.result.data(), mi.lmwStride);
        // Words fan out over the row's dedicated streaming channel
        // straight to the consumers.
        for (const auto &t : mi.targets) {
            const auto &dst = block.insts[t.inst];
            Tick arrive =
                channelDeliver(row, t.wordIdx, tileOf(dst), served);
            deliver(block, idx, t, st.result.at(t.wordIdx), arrive, stats);
        }
        actMaxTick = std::max(actMaxTick, served);
        return;
      }
      case Op::St: {
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        actMaxIssue = std::max(actMaxIssue, issue);
        Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
        if (mi.space == MemSpace::Smc)
            done = mem.streamWrite(row, a, b, atEdge);
        else
            done = mem.cachedWrite(row, a, b, atEdge);
        // Completion token: the lowering hangs memory-ordering edges off
        // stores whose region is also read within the block.
        st.result[0] = b;
        break;
      }
      case Op::Tld: {
        panic_if(!tables || mi.tableId >= tables->size(),
                 "Tld without table %u", mi.tableId);
        const auto &table = (*tables)[mi.tableId].data;
        Word value = table[a & (table.size() - 1)];
        if (m.mech.l0DataStore) {
            Tick grant = l0Ports[mi.row * m.cols + mi.col].acquire(ready);
            actMaxIssue = std::max(actMaxIssue, grant);
            done = grant + cyclesToTicks(m.l0Latency);
        } else {
            // Table lives in cached memory; pay a full L1 round trip.
            Tick issue = issuePort(mi.row, mi.col).acquire(ready);
            actMaxIssue = std::max(actMaxIssue, issue);
            Tick atEdge = mesh.routeToEdge(here, issue + ticksPerCycle);
            Addr byteAddr = tableByteBase[mi.tableId] + a * wordBytes;
            Tick served = mem.cachedTiming(row, byteAddr, atEdge, false);
            done = mesh.routeFromEdge(row, here, served);
        }
        st.result[0] = value;
        break;
      }
      default: {
        // Ordinary computation on the tile's functional units.
        const auto &info = isa::opInfo(mi.op);
        Tick issue = issuePort(mi.row, mi.col).acquire(ready);
        if (info.fu == isa::FuClass::FpDiv) {
            issue = divPorts[mi.row * m.cols + mi.col].acquire(issue);
        }
        actMaxIssue = std::max(actMaxIssue, issue);
        done = issue + cyclesToTicks(info.latency);
        st.result[0] = isa::evalOp(mi.op, a, b, c, mi.imm);
        break;
      }
    }

    actMaxTick = std::max(actMaxTick, done);

    // Serialize operand injection at the producer, then route each copy.
    sim::Resource &inject = injectPorts[mi.row * m.cols + mi.col];
    for (const auto &t : mi.targets) {
        const auto &dst = block.insts[t.inst];
        Tick injT = inject.acquire(done);
        Tick arrive = mesh.route(here, tileOf(dst), injT);
        if (mi.regTile)
            arrive += m.hopTicks; // edge crossing from the register tile
        deliver(block, idx, t, st.result[0], arrive, stats);
    }
}

Tick
BlockEngine::channelDeliver(unsigned row, uint8_t wordIdx, noc::Coord dst,
                            Tick ready)
{
    Tick grant = mem.smc().channelLane(row, wordIdx).acquire(ready);
    unsigned vdist = dst.row > row ? dst.row - row : row - dst.row;
    return grant + 1 + (dst.col + vdist) * m.hopTicks;
}

void
BlockEngine::deliver(const MappedBlock &block, uint32_t producer,
                     const isa::Target &target, Word value, Tick when,
                     RunStats &stats)
{
    (void)producer;
    (void)block;
    (void)stats;
    actMaxTick = std::max(actMaxTick, when);
    uint32_t idx = target.inst;
    uint8_t slot = target.srcSlot;

    // The capture must fit an InlineFn: this + payload words only. The
    // activation context (block, stats) is reached through members.
    eq.schedule(when, [this, idx, slot, value, when] {
        const MappedInst &mi = curBlock->insts[idx];
        InstState &st = state[idx];
        panic_if(slot >= mi.numSrcs,
                 "operand delivered to bad slot %u of %s", slot,
                 isa::disasm(mi).c_str());
        st.operand[slot] = value;
        st.present[slot] = true;
        if (!st.fired && !st.sawOperand) {
            st.sawOperand = true;
            st.firstOperand = when;
        }
        if (st.fired)
            return;
        if (mi.onceOnly && firedCount >= expectedCount)
            return;
        for (unsigned s = 0; s < mi.numSrcs; ++s)
            if (!st.present[s])
                return;
        execute(*curBlock, idx, when, *curStats);
    });
}

} // namespace dlp::core
