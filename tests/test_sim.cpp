/**
 * @file
 * Unit tests for the simulation kernel: event-queue ordering and the
 * calendar-based resource model (idle-window grants are what keep the
 * engines' out-of-order acquisitions honest).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"
#include "sim/resource.hh"

using namespace dlp;
using namespace dlp::sim;

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinATick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleAtOwnTick)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(7, [&] {
        eq.schedule(7, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 7u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, ResetRewindsClock)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    eq.schedule(1, [] {}); // would panic without the reset
    eq.run();
}

TEST(EventQueue, RunHonorsTickLimit)
{
    EventQueue eq;
    eq.schedule(1000, [] {});
    EXPECT_THROW(eq.run(/*limit=*/100), FatalError);
}

// ---------------------------------------------------------------------
// Calendar resources
// ---------------------------------------------------------------------

TEST(Resource, BackToBackGrantsQueue)
{
    Resource r(2);
    EXPECT_EQ(r.acquire(10), 10u);
    EXPECT_EQ(r.acquire(10), 12u);
    EXPECT_EQ(r.acquire(10), 14u);
}

TEST(Resource, LateRequestClaimsIdleWindow)
{
    Resource r(1);
    // A grant far in the future must not block an earlier idle window.
    EXPECT_EQ(r.acquire(1000), 1000u);
    EXPECT_EQ(r.acquire(10), 10u);
    EXPECT_EQ(r.acquire(10), 11u);
}

TEST(Resource, WindowBetweenGrantsIsUsed)
{
    Resource r(1);
    EXPECT_EQ(r.acquire(5), 5u);
    EXPECT_EQ(r.acquire(8), 8u);
    // The gap [6, 8) is free.
    EXPECT_EQ(r.acquire(6), 6u);
    EXPECT_EQ(r.acquire(6), 7u);
    // Now everything up to 9 is busy.
    EXPECT_EQ(r.acquire(5), 9u);
}

TEST(Resource, BurstNeedsContiguousWindow)
{
    Resource r(1);
    r.acquire(4); // busy [4,5)
    // A 3-tick burst at 2 would overlap tick 4; first fit is 5.
    EXPECT_EQ(r.acquireMany(2, 3), 5u);
    // A 2-tick burst fits exactly in [2,4).
    EXPECT_EQ(r.acquireMany(2, 2), 2u);
}

TEST(Resource, GrantAndWaitAccounting)
{
    Resource r(1);
    r.acquire(0);
    r.acquire(0);
    r.acquireMany(0, 3);
    EXPECT_EQ(r.grants(), 5u);
    EXPECT_GT(r.waitedTicks(), 0u);
}

TEST(Resource, ResetClearsCalendar)
{
    Resource r(1);
    r.acquire(3);
    r.reset();
    EXPECT_EQ(r.acquire(3), 3u);
    EXPECT_EQ(r.grants(), 1u);
}

TEST(Resource, MergedIntervalsStaySmall)
{
    // Dense in-order usage must not blow up the interval map: after N
    // adjacent grants the calendar is a single interval, so another
    // grant at the front must queue to the very end.
    Resource r(1);
    for (int i = 0; i < 1000; ++i)
        r.acquire(static_cast<Tick>(i));
    EXPECT_EQ(r.acquire(0), 1000u);
}
