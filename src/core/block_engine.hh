/**
 * @file
 * The block-dataflow execution engine: statically placed, dynamically
 * issued execution of SimdPlans on the grid core.
 *
 * Each activation fires every mapped instruction exactly once when its
 * operands arrive, routes results over the mesh with per-link contention,
 * and touches the memory system through the row-edge ports. Between
 * activations the engine models either a revitalize broadcast
 * (instruction-revitalization machines) or a full block re-map (the
 * baseline ILP machine). Operand revitalization keeps persistent operands
 * across activations so constant reads fire only once per mapping.
 *
 * Register writes are buffered and commit with the block (TRIPS
 * block-atomic semantics), so induction registers read the previous
 * activation's value by construction.
 */

#ifndef DLP_CORE_BLOCK_ENGINE_HH
#define DLP_CORE_BLOCK_ENGINE_HH

#include <vector>

#include "common/stats.hh"
#include "core/machine.hh"
#include "epoch/ir.hh"
#include "kernels/ir.hh"
#include "mem/memory_system.hh"
#include "noc/mesh.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "sched/plan.hh"
#include "sim/eventq.hh"
#include "sim/resource.hh"

namespace dlp::core {

/** Aggregate results of one plan execution. */
struct RunStats
{
    Cycles cycles = 0;          ///< total execution time
    uint64_t usefulOps = 0;     ///< non-overhead computation executed
    uint64_t instsExecuted = 0; ///< all dynamic instructions
    uint64_t activations = 0;
    uint64_t mappings = 0;      ///< block map events
    uint64_t groups = 0;

    double
    opsPerCycle() const
    {
        return cycles ? double(usefulOps) / double(cycles) : 0.0;
    }
};

class BlockEngine
{
  public:
    BlockEngine(const MachineParams &params, mem::MemorySystem &memory);

    /**
     * Point the engine at the kernel's lookup tables. Word addresses for
     * the non-L0 (cached) fallback are assigned contiguously from a
     * dedicated table region.
     */
    void setTables(const std::vector<kernels::Table> *tables);

    /**
     * Execute a plan over numRecords records (inputs already resident in
     * the SMC at plan.layout). Continues from the engine's current
     * simulated time, so successive batches accumulate.
     */
    RunStats run(const sched::SimdPlan &plan, uint64_t numRecords);

    /** Current simulated tick (end of the last run). */
    Tick now() const { return curTick; }

    /**
     * Advance simulated time (DMA transfers staging the next chunk of a
     * dataset that does not fit the SMC -- the paper notes lu is the one
     * benchmark whose data exceeds it).
     */
    void advanceTo(Tick t) { curTick = std::max(curTick, t); }

    /** Direct register-file access (tests). */
    Word reg(unsigned r) const { return rf.at(r); }

    /**
     * The engine statistics group ("core.simd"): per-activation
     * issue-width and operand-wait distributions, activation and
     * revitalization counters.
     */
    StatGroup &statsGroup() { return engStats; }

    /** The operand network (per-link statistics live on it). */
    noc::MeshNetwork &network() { return mesh; }

    /** Host-side count of discrete events executed across all runs. */
    uint64_t hostEvents() const { return eq.executedEvents(); }

    /// @name Epoch fast-forwarding counters (cumulative across runs).
    /// The core.simd eventsScheduled/eventsExecuted formulas report
    /// *simulated-machine* totals (host events plus the events replayed
    /// epochs did not fire); hostEvents() above stays the true host
    /// count, so ffEventsSaved() is exactly their difference.
    /// @{

    /** Epochs entered (record + validate + replay sequences). */
    uint64_t ffEpochs() const { return ffEpochsN; }

    /** Activations replayed arithmetically instead of simulated. */
    uint64_t ffIterations() const { return ffIterationsN; }

    /** Events those activations would have executed. */
    uint64_t ffEventsSaved() const { return ffEventsSavedN; }

    /** Activations actually simulated through the event queue. */
    uint64_t eventActivations() const { return eventActivationsN; }

    /// @}

    /**
     * Attach (or detach, with nullptr) a periodic stat sampler. The
     * engine polls it at activation boundaries, so sampling never
     * perturbs the event queue. The sampler must outlive the run.
     */
    void setSampler(obs::StatSampler *s) { sampler = s; }

    /// @name Occupancy signature (the epoch fast-forwarding hook).
    /// Every activation folds its fired instructions' (index, tick
    /// offset) pairs and its occupancy envelope into a 64-bit digest;
    /// equal digests mean the iteration replayed the same schedule.
    /// ROADMAP item 1 consumes this to detect steady state.
    /// @{

    /** Digest of the most recently completed activation. */
    uint64_t activationSignature() const { return lastSignature; }

    /** Consecutive activations (so far) with identical signatures. */
    uint64_t steadySignatureStreak() const { return signatureStreak; }

    /// @}

  private:
    const char *dlpTraceName() const { return "block"; }

    struct InstState
    {
        Word operand[isa::maxSrcs] = {0, 0, 0};
        bool present[isa::maxSrcs] = {false, false, false};
        bool fired = false;
        Tick firstOperand = 0;    ///< arrival tick of the first operand
        bool sawOperand = false;  ///< firstOperand is valid
        std::vector<Word> result; ///< result words (Lmw has several)
    };

    void runActivation(const isa::MappedBlock &block, Tick startTick,
                       bool firstActivation, RunStats &stats);

    /// @name Epoch fast-forwarding internals.
    /// @{

    /** Capture everything the epoch passes diff between iterations. */
    void captureEpochSnapshot(epoch::Snapshot &s, const RunStats &stats);

    /** Capture every tracked resource's calendar tail relative to origin. */
    void captureEpochTails(std::vector<epoch::ResourceTail> &out,
                           Tick origin);

    /**
     * Execute one unit's worth of fires functionally (no events),
     * committing register writes and sampling issue width at each
     * recorded activation boundary. unitBlocks names the block each
     * activation of the unit ran (one entry per fireCounts element).
     */
    void replayEpochFires(
        const std::vector<const isa::MappedBlock *> &unitBlocks,
        const epoch::EpochPlan &plan);

    /** Bulk-apply `iters` iterations of the plan's counter advances. */
    void applyEpochCounters(const epoch::EpochPlan &plan, uint64_t iters);

    /** Shift every periodic resource calendar by `iters` periods. */
    void shiftEpochCalendars(const epoch::EpochPlan &plan, uint64_t iters);

    /// @}

    /**
     * Fired by the reusable seed event at an activation's start tick:
     * count the instructions expected to fire and execute every one
     * whose operands are already present (zero-source ops,
     * persistent-only operands), in index order.
     */
    void seedActivation();

    /** Execute one instruction once its operands are ready. */
    void execute(const isa::MappedBlock &block, uint32_t idx, Tick ready,
                 RunStats &stats);

    /** Completion tick of a word delivered over the row's streaming
     *  channel to tile dst. */
    Tick channelDeliver(unsigned row, uint8_t wordIdx, noc::Coord dst,
                        Tick ready);

    /** Deliver one result word to a consumer operand slot. */
    void deliver(const isa::MappedBlock &block, uint32_t producer,
                 const isa::Target &target, Word value, Tick when,
                 RunStats &stats);

    noc::Coord tileOf(const isa::MappedInst &mi) const
    {
        return noc::Coord{mi.row, mi.col};
    }

    sim::Resource &issuePort(unsigned row, unsigned col)
    {
        return issuePorts[row * m.cols + col];
    }

    const MachineParams m;
    mem::MemorySystem &mem;
    noc::MeshNetwork mesh;
    sim::EventQueue eq;

    std::vector<Word> rf;
    std::vector<std::pair<unsigned, Word>> pendingWrites;

    std::vector<sim::Resource> issuePorts;  ///< 1 issue per cycle per tile
    std::vector<sim::Resource> divPorts;    ///< unpipelined divide/sqrt
    std::vector<sim::Resource> injectPorts; ///< operand injection per tile
    std::vector<sim::Resource> l0Ports;     ///< L0 data-store port per tile
    std::vector<sim::Resource> regRead;     ///< RF bank read ports
    std::vector<sim::Resource> regWrite;    ///< RF bank write ports

    const std::vector<kernels::Table> *tables = nullptr;
    std::vector<Addr> tableByteBase; ///< cached-space fallback addresses

    /** Resources whose occupancy bounds the activation pipeline. */
    std::vector<sim::Resource *> tracked;
    std::vector<const char *> trackedName;
    std::vector<uint64_t> grantSnapshot;

    /** Snapshot grant counts of all tracked resources. */
    void snapshotGrants();
    /** Max busy time any tracked resource accumulated since snapshot. */
    Tick busySinceSnapshot() const;

    StatGroup engStats{"core.simd"};
    Distribution *operandWait = nullptr; ///< first-operand-to-fire ticks
    Distribution *issueWidth = nullptr;  ///< insts/cycle per activation
    Stat *activationsStat = nullptr;
    Stat *revitalizesStat = nullptr;
    Stat *signatureRepeatsStat = nullptr; ///< steady-state activations

    obs::StatSampler *sampler = nullptr;
    obs::SignatureHash sigHash;   ///< running digest of this activation
    uint64_t lastSignature = 0;   ///< digest of the previous activation
    uint64_t signatureStreak = 0; ///< consecutive identical digests

    /// When non-null, the engine is recording an epoch unit: execute()
    /// appends every fire and runActivation() appends each activation's
    /// fire count, issue-width sample and fresh flag.
    epoch::RecordedIteration *epochRec = nullptr;

    uint64_t ffEpochsN = 0;
    uint64_t ffIterationsN = 0;
    uint64_t ffEventsSavedN = 0;
    uint64_t eventActivationsN = 0;

    /// Simulated-machine event totals the replayed epochs would have
    /// added to the queue's lifetime counters; folded into the
    /// eventsScheduled/eventsExecuted formulas.
    uint64_t ffScheduledOffset = 0;
    uint64_t ffExecutedOffset = 0;

    std::vector<InstState> state;

    /**
     * Activation context for event callbacks. Events capture only
     * `this` plus a few payload words (they must fit an InlineFn), so
     * the per-activation invariants -- which block is running, where
     * run stats accumulate -- live here instead of in every capture.
     */
    const isa::MappedBlock *curBlock = nullptr;
    RunStats *curStats = nullptr;
    Tick seedTick = 0;          ///< start tick of the current activation
    bool seedFresh = false;     ///< current activation is a fresh mapping
    sim::MemberEvent seedEvent; ///< bound once; rescheduled per activation

    uint64_t firedCount = 0;
    uint64_t expectedCount = 0;
    Tick actMaxTick = 0;   ///< full drain (deliveries, stores)
    Tick actMaxIssue = 0;  ///< last reservation-station issue
    Tick actMaxWrite = 0;  ///< last register-write commit

    Tick curTick = 0;

    /// Byte address region where lookup tables live when the L0 data
    /// store is disabled (they sit in cached memory).
    static constexpr Addr tableRegionBase = Addr(1) << 41;
};

} // namespace dlp::core

#endif // DLP_CORE_BLOCK_ENGINE_HH
