/**
 * @file
 * The static performance oracle CLI: lower every kernel of the catalog
 * for every Table 5 machine configuration -- exactly the plans the
 * processor would execute -- and print the cost model's predictions
 * without simulating anything. With --validate it additionally runs
 * the simulator grid and cross-checks the model both ways: the sound
 * lower bound must hold on every run, and the throughput estimate must
 * rank each kernel's configurations like the simulator does.
 *
 *   ./build/examples/cost_report                    # catalog x configs
 *   ./build/examples/cost_report --kernels dct,fft --configs S,S-O
 *   ./build/examples/cost_report --json COST.json
 *   ./build/examples/cost_report --validate --scale-div 8 --jobs 4
 *
 * Options:
 *   --kernels a,b,...   kernel names (default: all of Table 1)
 *   --configs a,b,...   configuration names (default: all of Table 5)
 *   --json FILE         write the report as a JSON document
 *   --validate          also simulate the grid and cross-check
 *   --min-spearman X    per-kernel rank-correlation floor (default 0.9)
 *   --scale-div N       shrink the simulated problem sizes (default 8)
 *   --seed N            dataset seed for the simulated grid
 *   --jobs N            sweep worker threads (0 = DLP_JOBS default)
 *
 * Exit status: 0 on success; 1 when --validate finds a bound violation
 * or a kernel below the rank-correlation floor.
 */

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/export.hh"
#include "analysis/json.hh"
#include "arch/configs.hh"
#include "arch/processor.hh"
#include "common/logging.hh"
#include "cost/cost.hh"
#include "driver/sweep.hh"
#include "kernels/catalog.hh"
#include "sched/linearize.hh"
#include "sched/simd_lowering.hh"
#include "verify/cost_invariants.hh"

using namespace dlp;

namespace {

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** The cost report for the plan (kernel, config) would execute. */
cost::CostReport
analyze(const kernels::Kernel &k, const core::MachineParams &m)
{
    uint64_t chunkRecords = 0;
    sched::StreamLayout layout = arch::makeStreamLayout(k, m, chunkRecords);
    if (m.mech.localPC)
        return cost::analyzeMimd(sched::lowerMimd(k, m, layout), m);
    return cost::analyzeSimd(sched::lowerSimd(k, m, layout), m);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    std::vector<std::string> kernelNames;
    std::vector<std::string> configNames;
    std::string jsonPath;
    bool validate = false;
    double minSpearman = 0.9;
    uint64_t scaleDiv = 8;
    uint64_t seed = 1234;
    unsigned jobs = 0;

    auto value = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "%s needs an argument", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernels") == 0) {
            std::string v = value(i);
            if (v != "all")
                kernelNames = splitList(v);
        } else if (std::strcmp(argv[i], "--configs") == 0) {
            std::string v = value(i);
            if (v != "all")
                configNames = splitList(v);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            jsonPath = value(i);
        } else if (std::strcmp(argv[i], "--validate") == 0) {
            validate = true;
        } else if (std::strcmp(argv[i], "--min-spearman") == 0) {
            minSpearman = std::atof(value(i));
        } else if (std::strcmp(argv[i], "--scale-div") == 0) {
            scaleDiv = std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            seed = std::strtoull(value(i), nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            jobs = unsigned(std::strtoul(value(i), nullptr, 10));
        } else {
            fatal("unknown option '%s' (see the header of "
                  "examples/cost_report.cpp)", argv[i]);
        }
    }
    if (configNames.empty())
        configNames = arch::allConfigNames();

    std::vector<kernels::Kernel> kernelSet;
    if (kernelNames.empty()) {
        kernelSet = kernels::allKernels();
    } else {
        for (const auto &n : kernelNames)
            kernelSet.push_back(kernels::kernelByName(n));
    }

    // --- Static predictions (no simulation) -----------------------------
    using analysis::json::Value;
    Value jreports = Value::array();

    std::printf("%-20s %-9s %10s %8s %6s %6s  %s\n", "kernel", "config",
                "pred t/rec", "bound/act", "hops", "rsOcc", "bottleneck");
    for (const auto &k : kernelSet) {
        for (const auto &configName : configNames) {
            core::MachineParams m = arch::configByName(configName);
            cost::CostReport rep = analyze(k, m);
            std::printf("%-20s %-9s %10.1f %8" PRIu64 " %6" PRIu64
                        " %6.2f  %s\n",
                        k.name.c_str(), configName.c_str(),
                        rep.predictedTicksPerRecord,
                        rep.mimd ? rep.minCycleInsts * ticksPerCycle
                                 : rep.boundTicksPerActivation,
                        rep.hopMass, rep.rsOccupancy,
                        rep.bottleneck.empty() ? "-"
                                               : rep.bottleneck.c_str());

            if (!jsonPath.empty()) {
                Value jr = Value::object();
                jr.set("kernel", k.name);
                jr.set("config", configName);
                jr.set("mimd", rep.mimd);
                jr.set("unroll", uint64_t(rep.unroll));
                jr.set("segments", uint64_t(rep.segments.size()));
                jr.set("predictedTicksPerRecord",
                       rep.predictedTicksPerRecord);
                jr.set("boundTicksPerActivation",
                       rep.boundTicksPerActivation);
                jr.set("mapTicksMin", rep.mapTicksMin);
                jr.set("setupTicks", rep.setupTicks);
                jr.set("minCycleInsts", rep.minCycleInsts);
                jr.set("criticalPathTicks", rep.criticalPathTicks);
                jr.set("maxPressureTicks", rep.maxPressureTicks);
                jr.set("bottleneck", rep.bottleneck);
                jr.set("hopMass", rep.hopMass);
                jr.set("hopLowerBound", rep.hopLowerBound);
                jr.set("smcReadUnits", rep.smcReadUnits);
                jr.set("smcWriteUnits", rep.smcWriteUnits);
                jr.set("rsOccupancy", rep.rsOccupancy);
                Value jsegs = Value::array();
                for (const auto &sc : rep.segments) {
                    Value js = Value::object();
                    js.set("block", sc.block);
                    js.set("insts", sc.insts);
                    js.set("steadyInsts", sc.steadyInsts);
                    js.set("mapTicks", sc.mapTicks);
                    js.set("gapTicks", sc.gapTicks);
                    js.set("criticalPathTicks", sc.criticalPathTicks);
                    js.set("steadyWritePathTicks",
                           sc.steadyWritePathTicks);
                    js.set("writeDrainTicks", sc.writeDrainTicks);
                    js.set("maxPressureTicks", sc.maxPressureTicks);
                    js.set("bottleneck", sc.bottleneck);
                    js.set("boundTicks", sc.boundTicks);
                    js.set("hopMass", sc.hopMass);
                    js.set("maxLinkTicks", sc.maxLinkTicks);
                    jsegs.push(std::move(js));
                }
                jr.set("segments", std::move(jsegs));
                jreports.push(std::move(jr));
            }
        }
    }

    // --- Simulator cross-validation -------------------------------------
    int status = 0;
    Value jvalidation = Value::object();
    if (validate) {
        driver::SweepPlan plan;
        std::vector<std::string> names;
        for (const auto &k : kernelSet)
            names.push_back(k.name);
        plan.addGrid(names, configNames, scaleDiv, seed);
        driver::SweepOptions opts;
        opts.jobs = jobs;
        std::vector<arch::ExperimentResult> results =
            driver::runSweep(plan, opts);

        std::printf("\n%-20s %-9s %12s %12s %8s\n", "kernel", "config",
                    "pred t/rec", "sim t/rec", "relErr");
        uint64_t boundViolations = 0;
        for (const auto &res : results) {
            double sim = res.records
                             ? double(cyclesToTicks(res.cycles)) /
                                   double(res.records)
                             : 0.0;
            double pred = res.cost.predictedTicksPerRecord;
            double rel = sim > 0.0 ? (pred - sim) / sim : 0.0;
            uint64_t bound = verify::costBoundTicks(res);
            uint64_t actual = cyclesToTicks(res.cycles);
            bool violated = bound > actual;
            boundViolations += violated;
            std::printf("%-20s %-9s %12.1f %12.1f %+7.0f%%%s\n",
                        res.kernel.c_str(), res.config.c_str(), pred, sim,
                        100.0 * rel,
                        violated ? "  BOUND VIOLATED" : "");
        }

        std::printf("\n%-20s %8s %10s\n", "kernel", "configs", "spearman");
        auto stats = verify::costRankStats(results);
        for (const auto &s : stats)
            std::printf("%-20s %8zu %10.3f%s\n", s.kernel.c_str(),
                        s.configs, s.spearman,
                        s.configs >= 3 && s.spearman < minSpearman
                            ? "  BELOW FLOOR" : "");

        auto findings = verify::costInvariants(results, minSpearman);
        std::printf("cost_report: %" PRIu64 " bound violation%s, "
                    "%zu finding%s (floor %.2f)\n",
                    boundViolations, boundViolations == 1 ? "" : "s",
                    findings.size(), findings.size() == 1 ? "" : "s",
                    minSpearman);
        for (const auto &f : findings)
            std::printf("  %s: %s\n", f.invariant.c_str(),
                        f.detail.c_str());
        status = findings.empty() ? 0 : 1;

        if (!jsonPath.empty()) {
            jvalidation.set("minSpearman", minSpearman);
            jvalidation.set("boundViolations", boundViolations);
            Value jranks = Value::array();
            for (const auto &s : stats) {
                Value jr = Value::object();
                jr.set("kernel", s.kernel);
                jr.set("configs", uint64_t(s.configs));
                jr.set("spearman", s.spearman);
                jranks.push(std::move(jr));
            }
            jvalidation.set("ranks", std::move(jranks));
            Value jruns = Value::array();
            for (const auto &res : results) {
                Value jr = Value::object();
                jr.set("kernel", res.kernel);
                jr.set("config", res.config);
                jr.set("records", res.records);
                jr.set("simTicks", cyclesToTicks(res.cycles));
                jr.set("boundTicks", verify::costBoundTicks(res));
                jr.set("predictedTicksPerRecord",
                       res.cost.predictedTicksPerRecord);
                jruns.push(std::move(jr));
            }
            jvalidation.set("runs", std::move(jruns));
            Value jfindings = Value::array();
            for (const auto &f : findings) {
                Value jf = Value::object();
                jf.set("invariant", f.invariant);
                jf.set("detail", f.detail);
                jfindings.push(std::move(jf));
            }
            jvalidation.set("findings", std::move(jfindings));
        }
    }

    if (!jsonPath.empty()) {
        Value doc = Value::object();
        doc.set("generator", "dlp-sim cost_report");
        doc.set("reports", std::move(jreports));
        if (validate)
            doc.set("validation", std::move(jvalidation));
        analysis::writeJsonFile(jsonPath, doc);
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return status;
}
