file(REMOVE_RECURSE
  "libdlp_ref.a"
)
