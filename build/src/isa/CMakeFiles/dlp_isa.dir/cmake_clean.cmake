file(REMOVE_RECURSE
  "CMakeFiles/dlp_isa.dir/disasm.cc.o"
  "CMakeFiles/dlp_isa.dir/disasm.cc.o.d"
  "CMakeFiles/dlp_isa.dir/opcodes.cc.o"
  "CMakeFiles/dlp_isa.dir/opcodes.cc.o.d"
  "libdlp_isa.a"
  "libdlp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
