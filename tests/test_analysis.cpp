/**
 * @file
 * Tests for the analysis layer: Table 2 attribute extraction and the
 * reporting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/attributes.hh"
#include "analysis/export.hh"
#include "analysis/json.hh"
#include "analysis/report.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "kernels/catalog.hh"

using namespace dlp;
using namespace dlp::analysis;

TEST(Attributes, ConvertMatchesHandCount)
{
    auto a = extractAttributes(kernels::makeConvert());
    // 9 multiplies + 6 adds = 15 compute + nothing else... our builder
    // also counts the 3 loads and 3 stores as instructions (21 total).
    EXPECT_EQ(a.numInsts, 21u);
    EXPECT_EQ(a.recordRead, 3u);
    EXPECT_EQ(a.recordWrite, 3u);
    EXPECT_EQ(a.numConstants, 9u);
    EXPECT_EQ(a.indexedConstants, 0u);
    EXPECT_EQ(a.loopBounds, "-");
    EXPECT_GT(a.ilp, 3.0);
}

TEST(Attributes, FftButterflyIsTiny)
{
    auto a = extractAttributes(kernels::makeFft());
    // 10 flops + 6 loads + 4 stores.
    EXPECT_EQ(a.numInsts, 20u);
    EXPECT_EQ(a.numConstants, 0u);
}

TEST(Attributes, CryptoTablesCounted)
{
    auto bf = extractAttributes(kernels::makeBlowfish());
    EXPECT_EQ(bf.indexedConstants, 16u + 4 * 256);
    EXPECT_EQ(bf.numConstants, 2u);
    EXPECT_EQ(bf.loopBounds, "16");

    auto aes = extractAttributes(kernels::makeRijndael());
    EXPECT_EQ(aes.indexedConstants, 4u * 256 + 256 + 64);
    EXPECT_EQ(aes.loopBounds, "9");
}

TEST(Attributes, VariableLoopsReported)
{
    auto sk = extractAttributes(kernels::makeVertexSkinning());
    EXPECT_EQ(sk.loopBounds, "variable");
    auto an = extractAttributes(kernels::makeAnisotropic());
    EXPECT_EQ(an.loopBounds, "variable");
    EXPECT_GT(an.irregularAccesses, 0u);
    EXPECT_LE(an.irregularAccesses, 50u); // Table 2: <= 50
}

TEST(Attributes, IrregularOnlyOnFragmentKernels)
{
    EXPECT_EQ(extractAttributes(kernels::makeFragmentSimple())
                  .irregularAccesses,
              4u);
    EXPECT_EQ(extractAttributes(kernels::makeFragmentReflection())
                  .irregularAccesses,
              4u);
    EXPECT_EQ(extractAttributes(kernels::makeMd5()).irregularAccesses, 0u);
}

TEST(Attributes, AllFourteenRows)
{
    auto rows = extractAllAttributes();
    EXPECT_EQ(rows.size(), 14u);
    for (const auto &r : rows) {
        EXPECT_GT(r.numInsts, 0u);
        EXPECT_GE(r.ilp, 1.0);
    }
}

TEST(Report, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_THROW(harmonicMean({}), PanicError);
    EXPECT_THROW(harmonicMean({1.0, 0.0}), PanicError);
}

TEST(Report, TextTableAligns)
{
    TextTable t;
    t.header({"a", "bbbb"});
    t.row({"xxxxx", "y"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("xxxxx"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Json, ParsesModestNesting)
{
    std::string text = "[[[[[[[[[[[1]]]]]]]]]]]";
    analysis::json::Value v = analysis::json::parse(text);
    const analysis::json::Value *inner = &v;
    for (int depth = 0; depth < 11; ++depth)
        inner = &inner->at(size_t(0));
    EXPECT_EQ(inner->asNumber(), 1.0);
}

TEST(Json, DepthCapRejectsPathologicalNesting)
{
    // A parser recursing once per '[' would overflow the stack on a
    // hostile document; the cap turns that into a clean fatal().
    std::string bomb(100000, '[');
    try {
        analysis::json::parse(bomb);
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("nesting"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Json, DepthCapAppliesToObjectsToo)
{
    std::string bomb;
    for (int i = 0; i < 5000; ++i)
        bomb += "{\"a\":";
    EXPECT_THROW(analysis::json::parse(bomb), FatalError);
}

TEST(Export, ZeroSampleDistributionOmitsMoments)
{
    // StatGroup::dump and the JSON exporter must agree on the shape of
    // an unsampled histogram: a sample count, never fabricated moments.
    StatGroup g("zs");
    g.distribution("touched", 0.0, 10.0, 4).sample(3.0);
    g.distribution("untouched", 0.0, 10.0, 4);
    GroupSnapshot snap = g.snapshot();

    analysis::json::Value v = analysis::toJson(snap);
    const auto &dists = v.at("distributions");
    const auto &touched = dists.at("touched");
    const auto &untouched = dists.at("untouched");
    EXPECT_TRUE(touched.has("mean"));
    EXPECT_TRUE(touched.has("min"));
    EXPECT_FALSE(untouched.has("mean"));
    EXPECT_FALSE(untouched.has("stdev"));
    EXPECT_FALSE(untouched.has("min"));
    EXPECT_FALSE(untouched.has("max"));
    EXPECT_EQ(untouched.at("samples").asNumber(), 0.0);

    std::ostringstream os;
    g.dump(os);
    std::string text = os.str();
    EXPECT_EQ(text.find("untouched::mean") == std::string::npos,
              !untouched.has("mean"));
}
