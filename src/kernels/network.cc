/**
 * @file
 * Network/security kernels: MD5 chunk compression, Blowfish and Rijndael
 * (AES-128) block encryption, mirroring src/ref bit-for-bit.
 *
 * Key material is derived deterministically from kernelSeed() so the
 * kernels' embedded round keys / S-boxes always match the golden models
 * used for validation. Packets are processed in parallel (the paper:
 * "exploiting the extensive data level parallelism in network flows").
 */

#include "common/random.hh"
#include "kernels/build_util.hh"
#include "kernels/catalog.hh"
#include "ref/blowfish.hh"
#include "ref/md5.hh"
#include "ref/rijndael.hh"

namespace dlp::kernels {

namespace {

constexpr Word mask32 = 0xffffffffull;

} // namespace

Kernel
makeMd5()
{
    KernelBuilder b("md5", Domain::Network);
    // Record: 8 words of message chunk (two 32-bit block words each,
    // little end first) + 2 words of chaining state -> 2 words of
    // updated state. This is Table 2's 10-in/2-out record.
    b.setRecord(10, 2);

    const auto &T = ref::md5T();
    const auto &S = ref::md5Shifts();

    // Unpack the sixteen 32-bit message words.
    Value m[16];
    for (int i = 0; i < 8; ++i) {
        Value w = b.inWord(i);
        m[2 * i] = b.opImm(isa::Op::And, w, mask32);
        m[2 * i + 1] = b.opImm(isa::Op::Shr, w, 32);
    }
    // Unpack chaining state (A|B<<32, C|D<<32).
    Value w8 = b.inWord(8);
    Value w9 = b.inWord(9);
    Value a0 = b.opImm(isa::Op::And, w8, mask32);
    Value b0 = b.opImm(isa::Op::Shr, w8, 32);
    Value c0 = b.opImm(isa::Op::And, w9, mask32);
    Value d0 = b.opImm(isa::Op::Shr, w9, 32);

    Value tcon[64];
    for (int i = 0; i < 64; ++i) {
        std::string cname = "T";
        cname += std::to_string(i);
        tcon[i] = b.constant(cname, T[i]);
    }

    Value a = a0, bb = b0, c = c0, d = d0;
    for (int i = 0; i < 64; ++i) {
        Value f;
        int g;
        if (i < 16) {
            f = b.or_(b.and_(bb, c),
                      b.and_(b.op(isa::Op::Not32, bb), d));
            g = i;
        } else if (i < 32) {
            f = b.or_(b.and_(d, bb),
                      b.and_(b.op(isa::Op::Not32, d), c));
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b.xor_(b.xor_(bb, c), d);
            g = (3 * i + 5) % 16;
        } else {
            f = b.xor_(c, b.or_(bb, b.op(isa::Op::Not32, d)));
            g = (7 * i) % 16;
        }
        Value sum = b.op(isa::Op::Add32, a, f);
        sum = b.op(isa::Op::Add32, sum, tcon[i]);
        sum = b.op(isa::Op::Add32, sum, m[g]);
        Value rot = b.opImm(isa::Op::Rotl32, sum, S[i]);
        Value bNew = b.op(isa::Op::Add32, bb, rot);
        a = d;
        d = c;
        c = bb;
        bb = bNew;
    }

    Value outA = b.op(isa::Op::Add32, a0, a);
    Value outB = b.op(isa::Op::Add32, b0, bb);
    Value outC = b.op(isa::Op::Add32, c0, c);
    Value outD = b.op(isa::Op::Add32, d0, d);

    b.outWord(0, b.or_(outA, b.opImm(isa::Op::Shl, outB, 32)));
    b.outWord(1, b.or_(outC, b.opImm(isa::Op::Shl, outD, 32)));
    return b.build();
}

Kernel
makeBlowfish()
{
    KernelBuilder b("blowfish", Domain::Network);
    // Record: one 64-bit block (left half in the high word).
    b.setRecord(1, 1);

    auto key = kernelKeyBytes("blowfish", 16);
    ref::Blowfish bf(key.data(), key.size());

    // The round subkeys P[0..15] are accessed by the loop index: an
    // indexed constant, so they live in a (padded) table. The final
    // whitening keys are the kernel's two scalar constants -- exactly
    // Table 2's "2 constants + 256-entry table" shape.
    std::vector<Word> ptab(bf.pArray().begin(), bf.pArray().begin() + 16);
    uint16_t pT = b.addTable("p", ptab);
    uint16_t sT[4];
    for (int i = 0; i < 4; ++i) {
        std::vector<Word> box(bf.sBoxes()[i].begin(), bf.sBoxes()[i].end());
        std::string tname = "s";
        tname += std::to_string(i);
        sT[i] = b.addTable(tname, std::move(box));
    }
    Value p16 = b.constant("P16", bf.pArray()[16]);
    Value p17 = b.constant("P17", bf.pArray()[17]);

    Value in = b.inWord(0);
    Value l0 = b.opImm(isa::Op::Shr, in, 32);
    Value r0 = b.opImm(isa::Op::And, in, mask32);

    b.beginLoop(16);
    Value lc = b.carry(l0);
    Value rc = b.carry(r0);
    {
        Value i = b.loopIdx();
        Value pi = b.tableLoad(pT, i);
        Value lx = b.xor_(lc, pi);
        Value ia = b.opImm(isa::Op::Shr, lx, 24);
        Value ib = b.opImm(isa::Op::And, b.opImm(isa::Op::Shr, lx, 16),
                           0xff);
        Value ic = b.opImm(isa::Op::And, b.opImm(isa::Op::Shr, lx, 8),
                           0xff);
        Value id = b.opImm(isa::Op::And, lx, 0xff);
        Value f = b.op(isa::Op::Add32,
                       b.xor_(b.op(isa::Op::Add32, b.tableLoad(sT[0], ia),
                                   b.tableLoad(sT[1], ib)),
                              b.tableLoad(sT[2], ic)),
                       b.tableLoad(sT[3], id));
        Value rx = b.xor_(rc, f);
        b.setCarryNext(lc, rx);
        b.setCarryNext(rc, lx);
    }
    b.endLoop();

    Value le = b.exitValue(lc);
    Value re = b.exitValue(rc);
    // Undo the final swap and apply the output whitening (l' = re ^ P17,
    // r' = le ^ P16), matching ref::Blowfish::encrypt.
    Value outL = b.xor_(re, p17);
    Value outR = b.xor_(le, p16);
    b.outWord(0, b.or_(outR, b.opImm(isa::Op::Shl, outL, 32)));
    return b.build();
}

Kernel
makeRijndael()
{
    KernelBuilder b("rijndael", Domain::Network);
    // Record: one 16-byte block as two words (big-endian 32-bit columns,
    // first column in the high half of word 0).
    b.setRecord(2, 2);

    auto key = kernelKeyBytes("rijndael", 16);
    ref::Aes128 aes(key.data());
    const auto &rk = aes.roundKeys();
    const auto &T = ref::aesTTables();
    const auto &sbox = ref::aesSbox();

    // Four 256-entry T-tables: the paper's 1024 indexed constants.
    uint16_t tT[4];
    for (int i = 0; i < 4; ++i) {
        std::vector<Word> tab(T[i].begin(), T[i].end());
        std::string tname = "t";
        tname += std::to_string(i);
        tT[i] = b.addTable(tname, std::move(tab));
    }
    std::vector<Word> sboxTab(sbox.begin(), sbox.end());
    uint16_t sT = b.addTable("sbox", std::move(sboxTab));
    // Round keys for rounds 1..9 are indexed by the round counter.
    std::vector<Word> rkt(rk.begin() + 4, rk.begin() + 40);
    uint16_t rkT = b.addTable("rk", std::move(rkt));

    Value rk0[4], rkF[4];
    for (int i = 0; i < 4; ++i) {
        rk0[i] = b.constant("rk" + std::to_string(i), rk[i]);
        rkF[i] = b.constant("rk" + std::to_string(40 + i), rk[40 + i]);
    }

    Value w0 = b.inWord(0);
    Value w1 = b.inWord(1);
    Value s0 = b.xor_(b.opImm(isa::Op::Shr, w0, 32), rk0[0]);
    Value s1 = b.xor_(b.opImm(isa::Op::And, w0, mask32), rk0[1]);
    Value s2 = b.xor_(b.opImm(isa::Op::Shr, w1, 32), rk0[2]);
    Value s3 = b.xor_(b.opImm(isa::Op::And, w1, mask32), rk0[3]);

    b.beginLoop(9);
    Value c0 = b.carry(s0);
    Value c1 = b.carry(s1);
    Value c2 = b.carry(s2);
    Value c3 = b.carry(s3);
    {
        Value idx = b.loopIdx();
        Value rkOff = b.markOverhead(b.opImm(isa::Op::Shl, idx, 2));
        Value s[4] = {c0, c1, c2, c3};
        Value t[4];
        for (int c = 0; c < 4; ++c) {
            Value i0 = b.opImm(isa::Op::Shr, s[c], 24);
            Value i1 = b.opImm(isa::Op::And,
                               b.opImm(isa::Op::Shr, s[(c + 1) & 3], 16),
                               0xff);
            Value i2 = b.opImm(isa::Op::And,
                               b.opImm(isa::Op::Shr, s[(c + 2) & 3], 8),
                               0xff);
            Value i3 = b.opImm(isa::Op::And, s[(c + 3) & 3], 0xff);
            Value x = b.xor_(b.xor_(b.tableLoad(tT[0], i0),
                                    b.tableLoad(tT[1], i1)),
                             b.xor_(b.tableLoad(tT[2], i2),
                                    b.tableLoad(tT[3], i3)));
            Value rkOffC =
                c == 0 ? rkOff
                       : b.markOverhead(
                             b.opImm(isa::Op::Add, rkOff, Word(c)));
            t[c] = b.xor_(x, b.tableLoad(rkT, rkOffC));
        }
        b.setCarryNext(c0, t[0]);
        b.setCarryNext(c1, t[1]);
        b.setCarryNext(c2, t[2]);
        b.setCarryNext(c3, t[3]);
    }
    b.endLoop();

    Value e[4] = {b.exitValue(c0), b.exitValue(c1), b.exitValue(c2),
                  b.exitValue(c3)};

    // Final round: SubBytes + ShiftRows + AddRoundKey.
    Value o[4];
    for (int c = 0; c < 4; ++c) {
        Value i0 = b.opImm(isa::Op::Shr, e[c], 24);
        Value i1 = b.opImm(isa::Op::And,
                           b.opImm(isa::Op::Shr, e[(c + 1) & 3], 16), 0xff);
        Value i2 = b.opImm(isa::Op::And,
                           b.opImm(isa::Op::Shr, e[(c + 2) & 3], 8), 0xff);
        Value i3 = b.opImm(isa::Op::And, e[(c + 3) & 3], 0xff);
        Value w = b.or_(
            b.or_(b.opImm(isa::Op::Shl, b.tableLoad(sT, i0), 24),
                  b.opImm(isa::Op::Shl, b.tableLoad(sT, i1), 16)),
            b.or_(b.opImm(isa::Op::Shl, b.tableLoad(sT, i2), 8),
                  b.tableLoad(sT, i3)));
        o[c] = b.xor_(w, rkF[c]);
    }

    b.outWord(0, b.or_(o[1], b.opImm(isa::Op::Shl, o[0], 32)));
    b.outWord(1, b.or_(o[3], b.opImm(isa::Op::Shl, o[2], 32)));
    return b.build();
}

} // namespace dlp::kernels
