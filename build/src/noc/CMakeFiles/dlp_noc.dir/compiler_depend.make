# Empty compiler generated dependencies file for dlp_noc.
# This may be replaced when dependencies are built.
