file(REMOVE_RECURSE
  "libdlp_sched.a"
)
