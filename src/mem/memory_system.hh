/**
 * @file
 * Facade over the whole memory hierarchy as seen from the row edge ports.
 *
 * Two access classes mirror the paper's two memory mechanisms:
 *
 *  - *stream* accesses (regular records): served by the SMC banks with
 *    wide reads and the coalescing store buffer when the SMC mechanism is
 *    enabled; on the baseline machine the same accesses fall through to
 *    the hardware-managed cache hierarchy, which is exactly the "every
 *    memory reference must proceed through shared structures such as the
 *    L1 cache" inefficiency of Section 5.2.
 *
 *  - *cached* accesses (irregular): always served by the banked L1 backed
 *    by the L2 banks not reconfigured as SMC, backed by main memory.
 *
 * The network hops from a tile to its row edge are charged by the core;
 * this class charges the bank ports, tag latencies and the edge-to-bank
 * distance for line-interleaved L1 banks.
 */

#ifndef DLP_MEM_MEMORY_SYSTEM_HH
#define DLP_MEM_MEMORY_SYSTEM_HH

#include <memory>

#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "mem/cache_model.hh"
#include "mem/main_memory.hh"
#include "mem/params.hh"
#include "mem/smc.hh"

namespace dlp::mem {

class MemorySystem
{
  public:
    /**
     * @param params     sizing/latency knobs
     * @param useSmc     software-managed-cache mechanism enabled?
     * @param hopTicks   tick cost of one mesh hop (edge-to-bank distance)
     */
    MemorySystem(const MemParams &params, bool useSmc, Tick hopTicks = 1);

    bool smcEnabled() const { return useSmc; }

    // --- Stream (regular) accesses, word-addressed ----------------------
    /** Read nwords contiguous words; completion tick of the last word. */
    Tick streamRead(unsigned row, Addr wordAddr, unsigned nwords,
                    Tick start, Word *out, unsigned stride = 1);

    /** Write one word of a record stream. */
    Tick streamWrite(unsigned row, Addr wordAddr, Word value, Tick start);

    // --- Cached (irregular) accesses, byte-addressed --------------------
    Tick cachedRead(unsigned row, Addr byteAddr, Tick start, Word &out);
    Tick cachedWrite(unsigned row, Addr byteAddr, Word value, Tick start);

    /** Timing-only cached access (lookup tables held in L1). */
    Tick cachedTiming(unsigned row, Addr byteAddr, Tick start, bool write);

    // --- Functional backdoors -------------------------------------------
    SmcSubsystem &smc() { return *smcSub; }
    MainMemory &mainMemory() { return *mainMem; }
    CacheModel &l1() { return *l1Cache; }
    CacheModel &l2() { return *l2Cache; }

    /** Program a DMA fill/drain of the row's SMC bank. */
    Tick dma(unsigned row, unsigned nwords, Tick start);

    const MemParams &params() const { return cfg; }

    /**
     * The memory-system statistics group ("mem.sys"): stream/cached
     * access counters, a cached-access latency histogram and L1/L2
     * hit-rate formulas.
     */
    StatGroup &statsGroup() { return statGroup; }

    void resetTiming();

  private:
    const char *dlpTraceName() const { return "memsys"; }

    /** Register statistics and the L1/L2 hit-rate formulas. */
    void initStats();

    /** Byte address the stream region occupies when the SMC is disabled. */
    Addr
    streamByteAddr(Addr wordAddr) const
    {
        return streamRegionBase + wordAddr * wordBytes;
    }

    MemParams cfg;
    bool useSmc;
    Tick hopTicks;

    std::unique_ptr<MainMemory> mainMem;
    std::unique_ptr<SmcSubsystem> smcSub;
    std::unique_ptr<CacheModel> l1Cache;
    std::unique_ptr<CacheModel> l2Cache;

    StatGroup statGroup{"mem.sys"};
    Distribution *cachedLatency = nullptr; ///< cached round-trip ticks
    Stat *cachedAccesses = nullptr;
    Stat *streamReadsStat = nullptr;
    Stat *streamWritesStat = nullptr;

    /// Streams live in a dedicated region of the physical address space
    /// so baseline cached accesses don't alias workload textures.
    static constexpr Addr streamRegionBase = Addr(1) << 40;
};

} // namespace dlp::mem

#endif // DLP_MEM_MEMORY_SYSTEM_HH
